//! The sender side of selective acknowledgment: the scoreboard.
//!
//! Tracks, for every transmitted-but-unacknowledged sequence, whether it
//! has been selectively acknowledged, declared lost, or is still in flight.
//! Loss declaration follows the SACK-based rule TCP uses (RFC 6675's
//! `DupThresh`): an unacknowledged sequence is lost once **three or more**
//! sequences above it have been SACKed.
//!
//! The scoreboard also retains per-sequence **send timestamps** — that is
//! what lets a QTPlight sender group newly-declared losses into TFRC loss
//! events by send time without any receiver help (paper §3), and it powers
//! retransmission-time RTT bookkeeping.

use qtp_metrics::{CostMeter, OpClass, StateSize};
use qtp_simnet::time::SimTime;
use std::collections::BTreeMap;

use crate::ranges::{RangeSet, SeqRange};

/// SACKed-sequences-above threshold for loss declaration (RFC 6675).
pub const DUP_THRESH: u64 = 3;

/// Outcome digest of one feedback packet applied to the scoreboard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SackDigest {
    /// Sequences newly acknowledged cumulatively (below the new cum ack).
    pub newly_cum_acked: u64,
    /// Sequences newly covered by SACK blocks.
    pub newly_sacked: u64,
    /// Sequences newly declared lost by the DupThresh rule, with their
    /// original send timestamps (ascending sequence order).
    pub newly_lost: Vec<(u64, SimTime)>,
}

/// Sender-side SACK scoreboard.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    /// Next sequence never yet sent.
    next_seq: u64,
    /// Everything below is cumulatively acknowledged.
    cum_ack: u64,
    /// SACKed sequences in `[cum_ack, next_seq)`.
    sacked: RangeSet,
    /// Sequences declared lost and not yet retransmitted.
    lost_pending: RangeSet,
    /// Sequences ever declared lost (so they are not re-declared).
    ever_lost: RangeSet,
    /// Send timestamp of each in-flight sequence (pruned on cum ack).
    /// Retransmissions overwrite the timestamp.
    send_times: BTreeMap<u64, SimTime>,
    /// Retransmission count per sequence (absent = 0). Pruned on cum ack.
    retx_counts: BTreeMap<u64, u32>,
    /// Cost accounting (sender side of the E5 ledger).
    pub meter: CostMeter,
}

impl Scoreboard {
    pub fn new() -> Self {
        Scoreboard {
            next_seq: 0,
            cum_ack: 0,
            sacked: RangeSet::new(),
            lost_pending: RangeSet::new(),
            ever_lost: RangeSet::new(),
            send_times: BTreeMap::new(),
            retx_counts: BTreeMap::new(),
            meter: CostMeter::new(),
        }
    }

    /// Allocate the next fresh sequence number and record its transmission.
    pub fn register_send(&mut self, now: SimTime) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send_times.insert(seq, now);
        self.meter.tick(OpClass::Alloc, 1);
        seq
    }

    /// Record a retransmission of `seq` (must be below `next_seq`).
    pub fn register_retransmit(&mut self, seq: u64, now: SimTime) {
        debug_assert!(seq < self.next_seq, "retransmit of unsent seq {seq}");
        self.send_times.insert(seq, now);
        *self.retx_counts.entry(seq).or_insert(0) += 1;
        self.lost_pending.remove(seq);
        self.meter.tick(OpClass::Update, 2);
    }

    /// Times `seq` has been retransmitted.
    pub fn retx_count(&self, seq: u64) -> u32 {
        self.retx_counts.get(&seq).copied().unwrap_or(0)
    }

    /// Next sequence that has never been sent.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Cumulative ack point.
    pub fn cum_ack(&self) -> u64 {
        self.cum_ack
    }

    /// Sequences sent but neither cum-acked nor SACKed nor pending-lost.
    pub fn in_flight(&self) -> u64 {
        (self.next_seq - self.cum_ack) - self.sacked.len() - self.lost_pending.len()
    }

    /// Is everything sent also acknowledged (cumulatively)?
    pub fn all_acked(&self) -> bool {
        self.cum_ack == self.next_seq
    }

    /// Lost sequences awaiting retransmission, ascending.
    pub fn lost_pending(&self) -> impl Iterator<Item = SeqRange> + '_ {
        self.lost_pending.iter()
    }

    /// Pop the lowest lost sequence for retransmission, if any.
    pub fn next_lost(&self) -> Option<u64> {
        self.lost_pending.first()
    }

    /// Remove a sequence from the lost set *without* retransmitting it
    /// (partial reliability decided to abandon it).
    pub fn abandon(&mut self, seq: u64) -> bool {
        self.meter.tick(OpClass::Update, 1);
        self.lost_pending.remove(seq)
    }

    /// Apply one feedback packet: new cumulative ack plus SACK blocks.
    pub fn on_feedback(&mut self, cum_ack: u64, blocks: &[SeqRange]) -> SackDigest {
        let mut digest = SackDigest::default();
        self.meter.tick(OpClass::Compare, 1 + blocks.len() as u64);

        // 1. Advance the cumulative ack.
        if cum_ack > self.cum_ack {
            digest.newly_cum_acked = cum_ack - self.cum_ack;
            self.cum_ack = cum_ack;
            self.sacked.remove_below(cum_ack);
            self.lost_pending.remove_below(cum_ack);
            self.ever_lost.remove_below(cum_ack);
            // Prune timestamp / retx maps.
            self.send_times = self.send_times.split_off(&cum_ack);
            self.retx_counts = self.retx_counts.split_off(&cum_ack);
            self.meter.tick(OpClass::Update, 5);
        }

        // 2. Record SACK blocks.
        for b in blocks {
            if b.end <= self.cum_ack {
                continue;
            }
            let clipped = SeqRange::new(b.start.max(self.cum_ack), b.end);
            let added = self.sacked.insert_range(clipped);
            digest.newly_sacked += added;
            // A sacked sequence is no longer lost-pending.
            self.meter.tick(OpClass::Update, 1);
        }
        // SACKed sequences cannot be pending retransmission.
        for b in blocks {
            if b.end <= self.cum_ack {
                continue;
            }
            let clipped = SeqRange::new(b.start.max(self.cum_ack), b.end);
            self.lost_pending.remove_range(clipped);
            self.meter.tick(OpClass::Update, 1);
        }

        // 3. Loss declaration: holes with >= DUP_THRESH sacked above.
        if let Some(highest_sacked_end) = self.sacked.max_end() {
            let holes = self.sacked.holes_within(self.cum_ack, highest_sacked_end);
            self.meter.tick(OpClass::Scan, holes.len() as u64);
            for hole in holes {
                for seq in hole.start..hole.end {
                    self.meter.tick(OpClass::Compare, 1);
                    if self.ever_lost.contains(seq) {
                        continue;
                    }
                    if self.sacked.count_above(seq) >= DUP_THRESH {
                        self.ever_lost.insert(seq);
                        self.lost_pending.insert(seq);
                        let ts = self.send_times.get(&seq).copied().unwrap_or(SimTime::ZERO);
                        digest.newly_lost.push((seq, ts));
                        self.meter.tick(OpClass::Alloc, 2);
                    }
                }
            }
        }
        digest.newly_lost.sort_by_key(|(s, _)| *s);
        digest
    }

    /// Declare a range lost without SACK evidence (endpoint timeout fallback
    /// for tail losses). Sacked sequences and sequences already pending
    /// retransmission are skipped — but sequences whose earlier
    /// *retransmission* is presumed lost are re-marked (unlike the SACK
    /// path, a timeout invalidates every in-flight copy). Returns the
    /// sequences actually declared, with their latest send times.
    pub fn force_mark_lost(&mut self, range: SeqRange) -> Vec<(u64, SimTime)> {
        let mut declared = Vec::new();
        for seq in range.start.max(self.cum_ack)..range.end.min(self.next_seq) {
            self.meter.tick(OpClass::Compare, 1);
            if self.sacked.contains(seq) || self.lost_pending.contains(seq) {
                continue;
            }
            self.ever_lost.insert(seq);
            self.lost_pending.insert(seq);
            let ts = self.send_times.get(&seq).copied().unwrap_or(SimTime::ZERO);
            declared.push((seq, ts));
            self.meter.tick(OpClass::Alloc, 2);
        }
        declared
    }

    /// Highest sequence the receiver has demonstrably seen: the cumulative
    /// ack or the top of the highest SACK block. The sender-side loss
    /// estimator uses this as its "highest received" bound.
    pub fn highest_seen(&self) -> u64 {
        self.sacked.max_end().unwrap_or(0).max(self.cum_ack)
    }

    /// Oldest outstanding (unsacked, unacked, not pending-lost) sequence's
    /// send time — drives tail-loss timeouts at the endpoint.
    pub fn oldest_outstanding_send_time(&self) -> Option<SimTime> {
        self.send_times
            .iter()
            .find(|(seq, _)| !self.sacked.contains(**seq) && !self.lost_pending.contains(**seq))
            .map(|(_, ts)| *ts)
    }
}

impl Default for Scoreboard {
    fn default() -> Self {
        Self::new()
    }
}

impl StateSize for Scoreboard {
    fn state_bytes(&self) -> usize {
        self.sacked.state_bytes()
            + self.lost_pending.state_bytes()
            + self.ever_lost.state_bytes()
            + self.send_times.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<SimTime>())
            + self.retx_counts.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
            + 2 * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Send n packets at 10 ms spacing.
    fn sender_with(n: u64) -> Scoreboard {
        let mut sb = Scoreboard::new();
        for k in 0..n {
            let seq = sb.register_send(ts(k * 10));
            assert_eq!(seq, k);
        }
        sb
    }

    #[test]
    fn cumulative_ack_advances() {
        let mut sb = sender_with(10);
        let d = sb.on_feedback(5, &[]);
        assert_eq!(d.newly_cum_acked, 5);
        assert_eq!(sb.cum_ack(), 5);
        assert_eq!(sb.in_flight(), 5);
        assert!(d.newly_lost.is_empty());
        // Regression of the ack point is ignored.
        let d2 = sb.on_feedback(3, &[]);
        assert_eq!(d2.newly_cum_acked, 0);
        assert_eq!(sb.cum_ack(), 5);
    }

    #[test]
    fn sack_blocks_counted_once() {
        let mut sb = sender_with(10);
        let d1 = sb.on_feedback(2, &[SeqRange::new(4, 6)]);
        assert_eq!(d1.newly_sacked, 2);
        let d2 = sb.on_feedback(2, &[SeqRange::new(4, 7)]);
        assert_eq!(d2.newly_sacked, 1, "only seq 6 is new");
    }

    #[test]
    fn dupthresh_loss_declaration() {
        let mut sb = sender_with(10);
        // Hole at 2; sacks 3,4 -> only 2 above, not lost yet.
        let d = sb.on_feedback(2, &[SeqRange::new(3, 5)]);
        assert!(d.newly_lost.is_empty());
        // Third sacked above declares it, carrying the original send time.
        let d = sb.on_feedback(2, &[SeqRange::new(3, 6)]);
        assert_eq!(d.newly_lost, vec![(2, ts(20))]);
        assert_eq!(sb.next_lost(), Some(2));
        // Never re-declared.
        let d = sb.on_feedback(2, &[SeqRange::new(3, 8)]);
        assert!(d.newly_lost.is_empty());
    }

    #[test]
    fn multi_packet_hole_declared_in_order() {
        let mut sb = sender_with(12);
        let d = sb.on_feedback(2, &[SeqRange::new(6, 9)]);
        let lost: Vec<u64> = d.newly_lost.iter().map(|(s, _)| *s).collect();
        assert_eq!(lost, vec![2, 3, 4, 5]);
    }

    #[test]
    fn retransmit_clears_pending_and_counts() {
        let mut sb = sender_with(10);
        sb.on_feedback(2, &[SeqRange::new(3, 6)]);
        assert_eq!(sb.next_lost(), Some(2));
        sb.register_retransmit(2, ts(200));
        assert_eq!(sb.next_lost(), None);
        assert_eq!(sb.retx_count(2), 1);
        sb.register_retransmit(2, ts(300));
        assert_eq!(sb.retx_count(2), 2);
    }

    #[test]
    fn cum_ack_after_retransmit_completes() {
        let mut sb = sender_with(6);
        sb.on_feedback(2, &[SeqRange::new(3, 6)]);
        sb.register_retransmit(2, ts(100));
        let d = sb.on_feedback(6, &[]);
        assert_eq!(d.newly_cum_acked, 4);
        assert!(sb.all_acked());
        assert_eq!(sb.in_flight(), 0);
    }

    #[test]
    fn abandon_skips_retransmission() {
        let mut sb = sender_with(10);
        sb.on_feedback(2, &[SeqRange::new(3, 6)]);
        assert!(sb.abandon(2));
        assert_eq!(sb.next_lost(), None);
        assert!(!sb.abandon(2), "already gone");
    }

    #[test]
    fn sacked_seq_cannot_stay_lost_pending() {
        let mut sb = sender_with(10);
        sb.on_feedback(0, &[SeqRange::new(3, 6)]);
        // 0,1,2 declared lost (3 sacked above each).
        let pending: Vec<u64> = sb.lost_pending().flat_map(|r| r.start..r.end).collect();
        assert_eq!(pending, vec![0, 1, 2]);
        // A late SACK for 1 (reordering, not loss) removes it from pending.
        sb.on_feedback(0, &[SeqRange::new(1, 2)]);
        let pending: Vec<u64> = sb.lost_pending().flat_map(|r| r.start..r.end).collect();
        assert_eq!(pending, vec![0, 2]);
    }

    #[test]
    fn force_mark_lost_respects_sacked_and_prior() {
        let mut sb = sender_with(10);
        sb.on_feedback(0, &[SeqRange::new(4, 5)]);
        let declared = sb.force_mark_lost(SeqRange::new(0, 8));
        let seqs: Vec<u64> = declared.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 5, 6, 7], "4 is sacked");
        // Second call declares nothing new.
        assert!(sb.force_mark_lost(SeqRange::new(0, 8)).is_empty());
    }

    #[test]
    fn in_flight_accounting() {
        let mut sb = sender_with(10);
        assert_eq!(sb.in_flight(), 10);
        sb.on_feedback(3, &[SeqRange::new(5, 7)]);
        // 10 - 3 cum - 2 sacked - 1 lost(seq 3? no: holes 3..5,7..10; sacked
        // above seq 3 = {5,6} only 2 -> not lost; seq 4: 2 above -> not lost)
        assert_eq!(sb.in_flight(), 5);
    }

    #[test]
    fn send_times_pruned_by_cum_ack() {
        let mut sb = sender_with(100);
        let before = sb.state_bytes();
        sb.on_feedback(90, &[]);
        assert!(sb.state_bytes() < before);
    }

    #[test]
    fn oldest_outstanding_send_time_tracks_head() {
        let mut sb = sender_with(5);
        assert_eq!(sb.oldest_outstanding_send_time(), Some(ts(0)));
        sb.on_feedback(2, &[]);
        assert_eq!(sb.oldest_outstanding_send_time(), Some(ts(20)));
        sb.on_feedback(2, &[SeqRange::new(2, 3)]);
        assert_eq!(sb.oldest_outstanding_send_time(), Some(ts(30)));
        sb.on_feedback(5, &[]);
        assert_eq!(sb.oldest_outstanding_send_time(), None);
    }
}
