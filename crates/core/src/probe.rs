//! Shared-handle instrumentation for endpoints.
//!
//! Agents are moved into the simulator, so experiments keep a cloned
//! [`Probe`] handle to read endpoint-internal measurements afterwards:
//! processing costs (the E5 receiver-load ledger), rate/loss-estimate
//! traces, reliability outcomes. Single-threaded simulation makes
//! `Rc<RefCell<…>>` the right tool.

use qtp_simnet::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Snapshot-style data shared between an endpoint and its experiment.
#[derive(Debug, Default, Clone)]
pub struct ProbeData {
    // ---- receiver-side ----
    /// Data packets processed by the receiver.
    pub rx_data_pkts: u64,
    /// Total per-packet processing operations at the receiver (all
    /// components: loss detection, history, reassembly, feedback building).
    pub rx_ops: u64,
    /// Peak bytes of protocol state held at the receiver.
    pub rx_state_bytes_peak: usize,
    /// Feedback packets sent by the receiver.
    pub rx_feedback_sent: u64,

    // ---- sender-side ----
    /// Total sender-side processing operations (CC + scoreboard + estimator).
    pub tx_ops: u64,
    /// Allowed-rate trace sampled at each feedback, `(time, bytes/s)`.
    pub rate_trace: Vec<(SimTime, f64)>,
    /// Loss-event-rate trace `(time, p)` as used by the rate computation.
    pub p_trace: Vec<(SimTime, f64)>,
    /// Data packets sent (including retransmissions).
    pub tx_data_pkts: u64,
    /// Retransmissions sent.
    pub tx_retransmissions: u64,
    /// Sequences abandoned by partial reliability.
    pub tx_abandoned: u64,
    /// Smoothed RTT estimate at the end of the run (seconds).
    pub rtt_estimate_s: f64,

    // ---- delivery (receiver app) ----
    /// Mean latency accumulator: sum of (deliver - ADU submit) seconds.
    pub latency_sum_s: f64,
    /// Packets contributing to `latency_sum_s`.
    pub latency_samples: u64,
}

impl ProbeData {
    /// Mean ADU-to-delivery latency, seconds.
    pub fn mean_latency_s(&self) -> f64 {
        if self.latency_samples == 0 {
            0.0
        } else {
            self.latency_sum_s / self.latency_samples as f64
        }
    }

    /// Receiver operations per data packet — the headline E5 number.
    pub fn rx_ops_per_packet(&self) -> f64 {
        if self.rx_data_pkts == 0 {
            0.0
        } else {
            self.rx_ops as f64 / self.rx_data_pkts as f64
        }
    }
}

/// Cloneable handle to shared probe data.
#[derive(Debug, Default, Clone)]
pub struct Probe {
    inner: Rc<RefCell<ProbeData>>,
}

impl Probe {
    pub fn new() -> Self {
        Probe::default()
    }

    /// Mutate the shared data.
    pub fn update(&self, f: impl FnOnce(&mut ProbeData)) {
        f(&mut self.inner.borrow_mut());
    }

    /// Read a copy of the shared data.
    pub fn snapshot(&self) -> ProbeData {
        self.inner.borrow().clone()
    }

    /// Read one value.
    pub fn read<T>(&self, f: impl FnOnce(&ProbeData) -> T) -> T {
        f(&self.inner.borrow())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_handles_share_state() {
        let a = Probe::new();
        let b = a.clone();
        a.update(|d| d.rx_data_pkts = 7);
        assert_eq!(b.read(|d| d.rx_data_pkts), 7);
        b.update(|d| d.rx_ops += 3);
        assert_eq!(a.snapshot().rx_ops, 3);
    }

    #[test]
    fn derived_metrics() {
        let p = Probe::new();
        p.update(|d| {
            d.rx_data_pkts = 4;
            d.rx_ops = 40;
            d.latency_sum_s = 2.0;
            d.latency_samples = 4;
        });
        assert_eq!(p.read(|d| d.rx_ops_per_packet()), 10.0);
        assert_eq!(p.read(|d| d.mean_latency_s()), 0.5);
        let empty = Probe::new();
        assert_eq!(empty.read(|d| d.rx_ops_per_packet()), 0.0);
        assert_eq!(empty.read(|d| d.mean_latency_s()), 0.0);
    }
}
