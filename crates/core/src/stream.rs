//! Application data plane: message-oriented stream handles over a [`Session`].
//!
//! A [`SendStream`]/[`RecvStream`] pair gives applications a byte/message
//! data plane on top of the negotiated transport:
//!
//! * `send` enqueues a message into a bounded buffer (backpressure via
//!   [`StreamError::Full`]); the sender endpoint drains it at the paced rate.
//! * Under fully-reliable profiles messages ride a u32-length-prefixed byte
//!   stream chunked into MTU-sized `StreamData` packets and are reassembled
//!   in order. Under partial/unreliable profiles each message maps to exactly
//!   one packet and is delivered as it arrives — late retransmissions whose
//!   age exceeds the message TTL are dropped at the receiver.
//! * `finish` starts the wire-level close handshake (FIN / FIN-ACK with a
//!   drain state); the receiver surfaces it as `SessionEvent::Finished`.
//!
//! Handles are cheap clones of shared state (`Rc<RefCell<..>>`) so an
//! application can keep them after moving the [`Session`] into a driver.
//!
//! [`Session`]: crate::session::Session

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use qtp_metrics::trace::Tracer;

use crate::wire::MAX_STREAM_PAYLOAD;

/// Default send-buffer capacity in bytes.
pub const DEFAULT_SEND_BUF: usize = 256 * 1024;

/// Pure, clonable configuration for the stream data plane. Attach it to a
/// [`ConnectionPlan`](crate::session::ConnectionPlan) with
/// [`stream()`](crate::session::ConnectionPlan::stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Bytes of queued, not-yet-transmitted application data accepted before
    /// `send` reports [`StreamError::Full`].
    pub send_buf: usize,
    /// Default per-message TTL in microseconds (0 = fall back to the
    /// negotiated partial-reliability TTL, if any). Only meaningful under
    /// non-chunked (partial/unreliable) delivery.
    pub default_ttl_micros: u32,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            send_buf: DEFAULT_SEND_BUF,
            default_ttl_micros: 0,
        }
    }
}

impl StreamConfig {
    /// Config with an explicit send-buffer capacity.
    pub fn with_send_buf(send_buf: usize) -> Self {
        StreamConfig {
            send_buf,
            ..Self::default()
        }
    }

    /// Sets the default per-message TTL in microseconds.
    pub fn default_ttl_micros(mut self, ttl: u32) -> Self {
        self.default_ttl_micros = ttl;
        self
    }
}

/// Errors surfaced by [`SendStream::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The bounded send buffer is full; retry after a `Writable` event.
    Full,
    /// `finish` was already called; no further sends are accepted.
    Finished,
    /// Message exceeds [`MAX_STREAM_PAYLOAD`] under one-message-per-packet
    /// (partial/unreliable) delivery, where messages cannot be chunked.
    TooLarge,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Full => write!(f, "send buffer full"),
            StreamError::Finished => write!(f, "stream already finished"),
            StreamError::TooLarge => {
                write!(f, "message exceeds {MAX_STREAM_PAYLOAD} bytes")
            }
        }
    }
}

impl std::error::Error for StreamError {}

struct QueuedMsg {
    bytes: Vec<u8>,
    ttl_micros: u32,
}

/// Sender-side shared state between the app handle and the endpoint.
pub(crate) struct SendShared {
    queue: VecDeque<QueuedMsg>,
    queued_bytes: usize,
    cap: usize,
    /// Chunked = length-prefixed byte stream (fully-reliable profiles);
    /// otherwise one whole message per packet.
    chunked: bool,
    default_ttl_micros: u32,
    finished: bool,
    /// A `send` bounced off the full buffer; arm the writable edge once
    /// space frees up.
    notify_writable: bool,
    writable_edge: bool,
    msgs_submitted: u64,
}

impl SendShared {
    fn new(cfg: &StreamConfig, chunked: bool) -> Self {
        SendShared {
            queue: VecDeque::new(),
            queued_bytes: 0,
            cap: cfg.send_buf.max(1),
            chunked,
            default_ttl_micros: cfg.default_ttl_micros,
            finished: false,
            notify_writable: false,
            writable_edge: false,
            msgs_submitted: 0,
        }
    }
}

/// Application handle for submitting messages; clone freely.
#[derive(Clone)]
pub struct SendStream {
    shared: Rc<RefCell<SendShared>>,
}

impl std::fmt::Debug for SendStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.shared.borrow();
        f.debug_struct("SendStream")
            .field("queued_bytes", &s.queued_bytes)
            .field("finished", &s.finished)
            .finish()
    }
}

impl SendStream {
    /// Enqueues one message with the config's default TTL.
    pub fn send(&self, bytes: &[u8]) -> Result<(), StreamError> {
        self.send_with_ttl(bytes, 0)
    }

    /// Enqueues one message with an explicit TTL in microseconds
    /// (0 = use the config default / negotiated TTL).
    ///
    /// An empty buffer always accepts one message, even past capacity, so a
    /// single oversized-but-chunkable message can never deadlock.
    pub fn send_with_ttl(&self, bytes: &[u8], ttl_micros: u32) -> Result<(), StreamError> {
        let mut s = self.shared.borrow_mut();
        if s.finished {
            return Err(StreamError::Finished);
        }
        if !s.chunked && bytes.len() > MAX_STREAM_PAYLOAD {
            return Err(StreamError::TooLarge);
        }
        if !s.queue.is_empty() && s.queued_bytes + bytes.len() > s.cap {
            s.notify_writable = true;
            return Err(StreamError::Full);
        }
        s.queued_bytes += bytes.len();
        s.msgs_submitted += 1;
        let ttl = if ttl_micros != 0 {
            ttl_micros
        } else {
            s.default_ttl_micros
        };
        s.queue.push_back(QueuedMsg {
            bytes: bytes.to_vec(),
            ttl_micros: ttl,
        });
        Ok(())
    }

    /// Signals end of stream: once the buffer drains (and, under reliable
    /// profiles, every packet is acknowledged) the endpoint sends FIN and
    /// completes the wire-level close handshake.
    pub fn finish(&self) {
        self.shared.borrow_mut().finished = true;
    }

    /// True once `finish` was called.
    pub fn is_finished(&self) -> bool {
        self.shared.borrow().finished
    }

    /// Bytes currently queued and not yet handed to the transport.
    pub fn queued_bytes(&self) -> usize {
        self.shared.borrow().queued_bytes
    }

    /// Total messages accepted by `send` so far.
    pub fn messages_submitted(&self) -> u64 {
        self.shared.borrow().msgs_submitted
    }
}

/// Receiver-side shared state between the app handle and the endpoint.
pub(crate) struct RecvShared {
    messages: VecDeque<Vec<u8>>,
    finished: bool,
    finished_edge: bool,
    readable_since_poll: u64,
    msgs_received: u64,
    bytes_received: u64,
    /// The owning endpoint's tracer: TTL drops live in its [`CounterSet`]
    /// (one source of truth shared with the receiver's emit site).
    ///
    /// [`CounterSet`]: qtp_metrics::trace::CounterSet
    tracer: Tracer,
}

impl RecvShared {
    fn new(tracer: Tracer) -> Self {
        RecvShared {
            messages: VecDeque::new(),
            finished: false,
            finished_edge: false,
            readable_since_poll: 0,
            msgs_received: 0,
            bytes_received: 0,
            tracer,
        }
    }

    fn push_msg(&mut self, bytes: Vec<u8>) {
        self.msgs_received += 1;
        self.bytes_received += bytes.len() as u64;
        self.readable_since_poll += 1;
        self.messages.push_back(bytes);
    }
}

/// Application handle for receiving messages; clone freely.
#[derive(Clone)]
pub struct RecvStream {
    shared: Rc<RefCell<RecvShared>>,
}

impl std::fmt::Debug for RecvStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.shared.borrow();
        f.debug_struct("RecvStream")
            .field("available", &s.messages.len())
            .field("finished", &s.finished)
            .finish()
    }
}

impl RecvStream {
    /// Pops the next complete message, if any.
    pub fn recv(&self) -> Option<Vec<u8>> {
        self.shared.borrow_mut().messages.pop_front()
    }

    /// Number of complete messages currently buffered.
    pub fn available(&self) -> usize {
        self.shared.borrow().messages.len()
    }

    /// True once the peer's FIN was processed and all deliverable data is in.
    pub fn is_finished(&self) -> bool {
        self.shared.borrow().finished
    }

    /// Total messages delivered to this stream.
    pub fn messages_received(&self) -> u64 {
        self.shared.borrow().msgs_received
    }

    /// Total payload bytes delivered to this stream.
    pub fn bytes_received(&self) -> u64 {
        self.shared.borrow().bytes_received
    }

    /// Messages dropped at the receiver because their TTL had expired by the
    /// time a (re)transmission arrived. Reads the endpoint's per-connection
    /// counters — the receiver's `pkt_dropped` trace emits are the single
    /// source of truth.
    pub fn ttl_dropped(&self) -> u64 {
        self.shared.borrow().tracer.counters().ttl_drops
    }
}

// ---------------------------------------------------------------------------
// Endpoint-side plumbing (crate-private).
// ---------------------------------------------------------------------------

/// Sender-endpoint view: drains the shared queue into wire-sized chunks.
pub(crate) struct StreamTx {
    shared: Rc<RefCell<SendShared>>,
    /// Chunked mode: length-prefixed bytes staged but not yet packetised.
    staged: VecDeque<u8>,
}

impl StreamTx {
    pub(crate) fn new(cfg: &StreamConfig, chunked: bool) -> Self {
        StreamTx {
            shared: Rc::new(RefCell::new(SendShared::new(cfg, chunked))),
            staged: VecDeque::new(),
        }
    }

    /// App-facing handle sharing this endpoint's state.
    pub(crate) fn handle(&self) -> SendStream {
        SendStream {
            shared: Rc::clone(&self.shared),
        }
    }

    pub(crate) fn shared(&self) -> Rc<RefCell<SendShared>> {
        Rc::clone(&self.shared)
    }

    /// Re-locks the framing mode once negotiation settles (before any
    /// stream bytes are packetised).
    pub(crate) fn set_chunked(&self, chunked: bool) {
        self.shared.borrow_mut().chunked = chunked;
    }

    /// True if any bytes remain to packetise.
    pub(crate) fn has_data(&self) -> bool {
        !self.staged.is_empty() || !self.shared.borrow().queue.is_empty()
    }

    /// True once the app called `finish` and every byte was packetised.
    pub(crate) fn fin_ready(&self) -> bool {
        self.shared.borrow().finished && !self.has_data()
    }

    /// Pops the next wire chunk of at most `max` bytes, plus its TTL tag.
    ///
    /// Chunked mode packs as many length-prefixed message bytes as fit (TTL
    /// is always 0: chunking implies full reliability). Message mode pops
    /// exactly one whole message.
    pub(crate) fn next_chunk(&mut self, max: usize) -> Option<(Vec<u8>, u32)> {
        let max = max.clamp(1, MAX_STREAM_PAYLOAD);
        let mut s = self.shared.borrow_mut();
        if s.chunked {
            while self.staged.len() < max {
                let Some(msg) = s.queue.pop_front() else {
                    break;
                };
                s.queued_bytes -= msg.bytes.len();
                self.staged.extend((msg.bytes.len() as u32).to_be_bytes());
                self.staged.extend(msg.bytes);
            }
            Self::arm_writable(&mut s);
            if self.staged.is_empty() {
                return None;
            }
            let take = self.staged.len().min(max);
            let chunk: Vec<u8> = self.staged.drain(..take).collect();
            Some((chunk, 0))
        } else {
            let msg = s.queue.pop_front()?;
            s.queued_bytes -= msg.bytes.len();
            Self::arm_writable(&mut s);
            Some((msg.bytes, msg.ttl_micros))
        }
    }

    fn arm_writable(s: &mut SendShared) {
        if s.notify_writable && s.queued_bytes < s.cap {
            s.notify_writable = false;
            s.writable_edge = true;
        }
    }
}

/// Receiver-endpoint view: reassembles wire chunks back into messages.
pub(crate) struct StreamRx {
    shared: Rc<RefCell<RecvShared>>,
    /// Chunked mode only: payloads stashed until the cumulative ack passes.
    stash: BTreeMap<u64, Vec<u8>>,
    /// Chunked mode only: in-order byte stream awaiting message parsing.
    parse_buf: VecDeque<u8>,
    /// Next sequence number to feed into `parse_buf`.
    next_parse_seq: u64,
    ordered: bool,
    fin_final_seq: Option<u64>,
}

impl StreamRx {
    pub(crate) fn new(ordered: bool, tracer: Tracer) -> Self {
        StreamRx {
            shared: Rc::new(RefCell::new(RecvShared::new(tracer))),
            stash: BTreeMap::new(),
            parse_buf: VecDeque::new(),
            next_parse_seq: 0,
            ordered,
            fin_final_seq: None,
        }
    }

    /// App-facing handle sharing this endpoint's state.
    pub(crate) fn handle(&self) -> RecvStream {
        RecvStream {
            shared: Rc::clone(&self.shared),
        }
    }

    pub(crate) fn shared(&self) -> Rc<RefCell<RecvShared>> {
        Rc::clone(&self.shared)
    }

    pub(crate) fn ordered(&self) -> bool {
        self.ordered
    }

    /// Re-locks the delivery mode once negotiation settles (data arriving
    /// before the handshake is dropped, so no payload can predate this).
    pub(crate) fn set_ordered(&mut self, ordered: bool) {
        self.ordered = ordered;
    }

    /// Accepts a newly arrived payload. Ordered mode stashes it until
    /// [`drain`](Self::drain) observes the cumulative ack passing its seq;
    /// message mode delivers it immediately.
    pub(crate) fn on_payload(&mut self, seq: u64, payload: Vec<u8>) {
        if self.ordered {
            self.stash.insert(seq, payload);
        } else {
            self.shared.borrow_mut().push_msg(payload);
        }
    }

    /// Ordered mode: moves contiguously acknowledged payloads into the parse
    /// buffer and emits every complete length-prefixed message. Also
    /// re-checks FIN completion. Returns the number of messages delivered.
    pub(crate) fn drain(&mut self, cum_ack: u64) -> u64 {
        let mut delivered = 0;
        if self.ordered {
            while self.next_parse_seq < cum_ack {
                // Fully-reliable profiles never leave a hole here, but a FIN
                // processed after close can forward past stash gaps.
                if let Some(p) = self.stash.remove(&self.next_parse_seq) {
                    self.parse_buf.extend(p);
                }
                self.next_parse_seq += 1;
            }
            delivered = self.parse_messages();
        }
        self.maybe_finish(cum_ack);
        delivered
    }

    fn parse_messages(&mut self) -> u64 {
        let mut n = 0;
        loop {
            if self.parse_buf.len() < 4 {
                break;
            }
            let mut len_bytes = [0u8; 4];
            for (i, b) in self.parse_buf.iter().take(4).enumerate() {
                len_bytes[i] = *b;
            }
            let len = u32::from_be_bytes(len_bytes) as usize;
            if self.parse_buf.len() < 4 + len {
                break;
            }
            self.parse_buf.drain(..4);
            let msg: Vec<u8> = self.parse_buf.drain(..len).collect();
            self.shared.borrow_mut().push_msg(msg);
            n += 1;
        }
        n
    }

    /// Registers the peer's FIN. Ordered mode finishes only once the
    /// cumulative ack reaches `final_seq` (FIN can arrive out of order);
    /// message mode finishes immediately.
    pub(crate) fn on_fin(&mut self, final_seq: u64, cum_ack: u64) {
        self.fin_final_seq = Some(final_seq);
        self.maybe_finish(cum_ack);
    }

    fn maybe_finish(&mut self, cum_ack: u64) {
        let Some(final_seq) = self.fin_final_seq else {
            return;
        };
        let done = if self.ordered {
            cum_ack >= final_seq
        } else {
            true
        };
        if done {
            let mut s = self.shared.borrow_mut();
            if !s.finished {
                s.finished = true;
                s.finished_edge = true;
            }
        }
    }

    pub(crate) fn is_finished(&self) -> bool {
        self.shared.borrow().finished
    }
}

// ---------------------------------------------------------------------------
// Session-side edge polling (crate-private).
// ---------------------------------------------------------------------------

/// Drains and clears the sender-side writable edge.
pub(crate) fn take_writable_edge(shared: &Rc<RefCell<SendShared>>) -> bool {
    let mut s = shared.borrow_mut();
    std::mem::take(&mut s.writable_edge)
}

/// Drains the receiver-side readable count since the last poll.
pub(crate) fn take_readable(shared: &Rc<RefCell<RecvShared>>) -> u64 {
    let mut s = shared.borrow_mut();
    std::mem::take(&mut s.readable_since_poll)
}

/// Drains and clears the receiver-side finished edge. The session layer
/// tracks `Finished` through `QtpReceiver::finished` instead; the edge
/// stays available for white-box tests of the shared state.
#[cfg(test)]
pub(crate) fn take_finished_edge(shared: &Rc<RefCell<RecvShared>>) -> bool {
    let mut s = shared.borrow_mut();
    std::mem::take(&mut s.finished_edge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backpressure_full_then_writable_edge() {
        let mut tx = StreamTx::new(&StreamConfig::with_send_buf(10), true);
        let h = tx.handle();
        h.send(b"123456").unwrap();
        h.send(b"7890").unwrap(); // exactly at cap
        assert_eq!(h.send(b"x"), Err(StreamError::Full));
        assert!(
            !take_writable_edge(&tx.shared()),
            "no edge until space frees"
        );
        let (chunk, ttl) = tx.next_chunk(100).unwrap();
        assert_eq!(ttl, 0);
        // 4-byte prefix + 6, then 4-byte prefix + 4.
        assert_eq!(chunk.len(), 18);
        assert!(take_writable_edge(&tx.shared()));
        assert!(!take_writable_edge(&tx.shared()), "edge is one-shot");
        h.send(b"x").unwrap();
    }

    #[test]
    fn empty_queue_accepts_oversized_message() {
        let tx = StreamTx::new(&StreamConfig::with_send_buf(4), true);
        let h = tx.handle();
        h.send(&[7u8; 64]).unwrap();
        assert_eq!(h.send(b"y"), Err(StreamError::Full));
    }

    #[test]
    fn finish_rejects_further_sends() {
        let tx = StreamTx::new(&StreamConfig::default(), true);
        let h = tx.handle();
        h.send(b"last").unwrap();
        h.finish();
        assert_eq!(h.send(b"more"), Err(StreamError::Finished));
        assert!(!tx.fin_ready(), "data still queued");
    }

    #[test]
    fn chunker_packs_and_splits_messages() {
        let mut tx = StreamTx::new(&StreamConfig::default(), true);
        let h = tx.handle();
        h.send(&[1u8; 6]).unwrap();
        h.send(&[2u8; 6]).unwrap();
        // Each message costs 10 bytes framed; max 12 splits mid-message.
        let (c1, _) = tx.next_chunk(12).unwrap();
        let (c2, _) = tx.next_chunk(12).unwrap();
        assert_eq!(c1.len(), 12);
        assert_eq!(c2.len(), 8);
        assert!(tx.next_chunk(12).is_none());

        let mut rx = StreamRx::new(true, Tracer::new(0));
        let rh = rx.handle();
        rx.on_payload(0, c1);
        rx.on_payload(1, c2);
        assert_eq!(rx.drain(2), 2);
        assert_eq!(rh.recv().unwrap(), vec![1u8; 6]);
        assert_eq!(rh.recv().unwrap(), vec![2u8; 6]);
        assert!(rh.recv().is_none());
    }

    #[test]
    fn ordered_drain_waits_for_cum_ack() {
        let mut tx = StreamTx::new(&StreamConfig::default(), true);
        let h = tx.handle();
        h.send(b"hello").unwrap();
        let (c, _) = tx.next_chunk(1400).unwrap();
        let mut rx = StreamRx::new(true, Tracer::new(0));
        rx.on_payload(0, c);
        assert_eq!(rx.drain(0), 0, "not yet acked");
        assert_eq!(rx.drain(1), 1);
        assert_eq!(rx.handle().recv().unwrap(), b"hello");
    }

    #[test]
    fn message_mode_one_per_packet_with_ttl() {
        let mut tx = StreamTx::new(&StreamConfig::default().default_ttl_micros(5_000), false);
        let h = tx.handle();
        h.send(b"frame-a").unwrap();
        h.send_with_ttl(b"frame-b", 9_000).unwrap();
        assert_eq!(tx.next_chunk(1400).unwrap(), (b"frame-a".to_vec(), 5_000));
        assert_eq!(tx.next_chunk(1400).unwrap(), (b"frame-b".to_vec(), 9_000));
        assert_eq!(
            h.send(&vec![0u8; MAX_STREAM_PAYLOAD + 1]),
            Err(StreamError::TooLarge)
        );
    }

    #[test]
    fn message_mode_delivers_out_of_order_immediately() {
        let tracer = Tracer::new(0);
        let mut rx = StreamRx::new(false, tracer.clone());
        let rh = rx.handle();
        rx.on_payload(3, b"late".to_vec());
        assert_eq!(rh.recv().unwrap(), b"late");
        // TTL drops are counted by the endpoint's tracer (pkt_dropped) and
        // surfaced through the shared handle.
        tracer.emit(
            0,
            qtp_metrics::trace::TraceEventKind::PktDropped { seq: 4, age_us: 1 },
        );
        assert_eq!(rh.ttl_dropped(), 1);
        rx.on_fin(5, 0);
        assert!(rh.is_finished(), "message mode finishes on FIN");
        assert!(take_finished_edge(&rx.shared()));
        assert!(!take_finished_edge(&rx.shared()));
    }

    #[test]
    fn ordered_fin_waits_for_final_seq() {
        let mut tx = StreamTx::new(&StreamConfig::default(), true);
        tx.handle().send(b"ab").unwrap();
        let (c, _) = tx.next_chunk(1400).unwrap();
        let mut rx = StreamRx::new(true, Tracer::new(0));
        rx.on_fin(1, 0); // FIN raced ahead of the data
        assert!(!rx.is_finished());
        rx.on_payload(0, c);
        rx.drain(1);
        assert!(rx.is_finished());
        assert_eq!(take_readable(&rx.shared()), 1);
    }

    #[test]
    fn split_length_prefix_across_chunks_parses() {
        let mut tx = StreamTx::new(&StreamConfig::default(), true);
        tx.handle().send(&[9u8; 10]).unwrap();
        // Chunk size 3 splits the 4-byte length prefix itself.
        let mut rx = StreamRx::new(true, Tracer::new(0));
        let mut seq = 0;
        while let Some((c, _)) = tx.next_chunk(3) {
            rx.on_payload(seq, c);
            seq += 1;
        }
        assert_eq!(rx.drain(seq), 1);
        assert_eq!(rx.handle().recv().unwrap(), vec![9u8; 10]);
    }
}
