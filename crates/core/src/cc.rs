//! Congestion-control dispatch.
//!
//! The sender endpoint is parameterised by one of the negotiable CC
//! variants (paper axis 3). Dispatch goes through the [`qtp_cc`] trait
//! seam: [`controller_for`] turns a negotiated [`CcKind`] into a boxed
//! [`CongestionControl`], so adding a controller touches the registry here
//! and nothing in the endpoint.
//!
//! The old closed-enum dispatcher [`CcMachine`] remains as a deprecated
//! shim for one release; it only knows the original three TFRC-family
//! variants and panics on the window/model controllers.

use qtp_cc::{BbrLite, CongestionControl, Cubic, FixedCc, GtfrcCc, TfrcCc};
use qtp_simnet::time::{Rate, SimTime};
use qtp_tfrc::{GtfrcSender, SenderConfig, TfrcSender};
use std::time::Duration;

use crate::caps::CcKind;

/// Instantiate the negotiated controller behind the trait seam.
pub fn controller_for(kind: CcKind, s: u32) -> Box<dyn CongestionControl> {
    match kind {
        CcKind::Tfrc => Box::new(TfrcCc::new(s)),
        CcKind::Gtfrc { target } => Box::new(GtfrcCc::new(s, target)),
        CcKind::Fixed { rate } => Box::new(FixedCc::new(rate, s)),
        CcKind::Cubic => Box::new(Cubic::new(s)),
        CcKind::BbrLite => Box::new(BbrLite::new(s)),
    }
}

/// A congestion-control machine chosen at negotiation time.
#[deprecated(
    since = "0.1.0",
    note = "use `controller_for` and the `qtp_cc::CongestionControl` trait; \
            CcMachine cannot represent the Cubic/BbrLite controllers"
)]
#[derive(Debug, Clone)]
pub enum CcMachine {
    Tfrc(TfrcSender),
    Gtfrc(GtfrcSender),
    /// Open-loop fixed rate (ablation tool; ignores feedback).
    Fixed {
        rate: Rate,
        s: u32,
    },
}

#[allow(deprecated)]
impl CcMachine {
    /// Instantiate from the negotiated kind.
    ///
    /// # Panics
    ///
    /// On [`CcKind::Cubic`] and [`CcKind::BbrLite`] — the closed enum
    /// predates them; use [`controller_for`].
    pub fn new(kind: CcKind, s: u32) -> Self {
        match kind {
            CcKind::Tfrc => CcMachine::Tfrc(TfrcSender::new(SenderConfig::new(s))),
            CcKind::Gtfrc { target } => {
                CcMachine::Gtfrc(GtfrcSender::new(SenderConfig::new(s), target))
            }
            CcKind::Fixed { rate } => CcMachine::Fixed { rate, s },
            CcKind::Cubic | CcKind::BbrLite => panic!(
                "CcMachine is deprecated and cannot host {kind:?}; \
                 use qtp_core::cc::controller_for"
            ),
        }
    }

    /// Seed the RTT from the handshake.
    pub fn seed_rtt(&mut self, now: SimTime, rtt: Duration) {
        match self {
            CcMachine::Tfrc(tx) => tx.seed_rtt(now, rtt),
            CcMachine::Gtfrc(tx) => tx.seed_rtt(now, rtt),
            CcMachine::Fixed { .. } => {}
        }
    }

    /// Process a feedback report (`p` chosen by the endpoint's feedback
    /// mode — the composition seam).
    pub fn on_feedback(
        &mut self,
        now: SimTime,
        ts_echo: SimTime,
        t_delay: Duration,
        x_recv: f64,
        p: f64,
    ) {
        match self {
            CcMachine::Tfrc(tx) => tx.on_feedback(now, ts_echo, t_delay, x_recv, p),
            CcMachine::Gtfrc(tx) => tx.on_feedback(now, ts_echo, t_delay, x_recv, p),
            CcMachine::Fixed { .. } => {}
        }
    }

    /// Nofeedback-timer expiry.
    pub fn on_nofeedback_timer(&mut self, now: SimTime) {
        match self {
            CcMachine::Tfrc(tx) => tx.on_nofeedback_timer(now),
            CcMachine::Gtfrc(tx) => tx.on_nofeedback_timer(now),
            CcMachine::Fixed { .. } => {}
        }
    }

    /// Current nofeedback deadline (far future for fixed rate).
    pub fn nofeedback_deadline(&self) -> SimTime {
        match self {
            CcMachine::Tfrc(tx) => tx.nofeedback_deadline(),
            CcMachine::Gtfrc(tx) => tx.nofeedback_deadline(),
            CcMachine::Fixed { .. } => SimTime::MAX,
        }
    }

    /// Allowed sending rate, bytes/second.
    pub fn allowed_rate(&self) -> f64 {
        match self {
            CcMachine::Tfrc(tx) => tx.allowed_rate(),
            CcMachine::Gtfrc(tx) => tx.allowed_rate(),
            CcMachine::Fixed { rate, .. } => rate.bytes_per_sec(),
        }
    }

    /// Inter-packet gap at the allowed rate.
    pub fn send_interval(&self) -> Duration {
        match self {
            CcMachine::Tfrc(tx) => tx.send_interval(),
            CcMachine::Gtfrc(tx) => tx.send_interval(),
            CcMachine::Fixed { rate, s } => rate.tx_time(*s),
        }
    }

    /// Smoothed RTT, if known.
    pub fn rtt(&self) -> Option<Duration> {
        match self {
            CcMachine::Tfrc(tx) => tx.rtt(),
            CcMachine::Gtfrc(tx) => tx.tfrc().rtt(),
            CcMachine::Fixed { .. } => None,
        }
    }

    /// Sender-side CC processing operations so far.
    pub fn ops(&self) -> u64 {
        match self {
            CcMachine::Tfrc(tx) => tx.meter.total(),
            CcMachine::Gtfrc(tx) => tx.tfrc().meter.total(),
            CcMachine::Fixed { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_kind() {
        for (kind, name) in [
            (CcKind::Tfrc, "tfrc"),
            (
                CcKind::Gtfrc {
                    target: Rate::from_mbps(2),
                },
                "gtfrc",
            ),
            (
                CcKind::Fixed {
                    rate: Rate::from_kbps(800),
                },
                "fixed",
            ),
            (CcKind::Cubic, "cubic"),
            (CcKind::BbrLite, "bbr-lite"),
        ] {
            assert_eq!(controller_for(kind, 1000).name(), name);
        }
    }

    #[test]
    fn factory_fixed_rate_ignores_feedback() {
        let mut f = controller_for(
            CcKind::Fixed {
                rate: Rate::from_kbps(800),
            },
            1000,
        );
        f.on_feedback(&qtp_cc::FeedbackReport {
            now: SimTime::from_secs(1),
            ts_echo: SimTime::ZERO,
            t_delay: Duration::ZERO,
            x_recv: 10.0,
            p: 0.5,
            newly_acked_bytes: 0,
            newly_lost_pkts: 5,
        });
        assert_eq!(f.allowed_rate(), 100_000.0);
        assert_eq!(f.nofeedback_deadline(), SimTime::MAX);
        // 1000 B at 100 kB/s = 10 ms.
        assert_eq!(f.send_interval(), Duration::from_millis(10));
    }

    #[test]
    fn factory_gtfrc_floor_survives_heavy_loss_feedback() {
        let mut g = controller_for(
            CcKind::Gtfrc {
                target: Rate::from_mbps(1),
            },
            1000,
        );
        g.seed_rtt(SimTime::ZERO, Duration::from_millis(100));
        g.on_feedback(&qtp_cc::FeedbackReport {
            now: SimTime::from_millis(100),
            ts_echo: SimTime::ZERO,
            t_delay: Duration::ZERO,
            x_recv: 1_000.0,
            p: 0.4,
            newly_acked_bytes: 0,
            newly_lost_pkts: 10,
        });
        assert!(g.allowed_rate() >= 125_000.0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_still_builds_the_original_kinds() {
        let t = CcMachine::new(CcKind::Tfrc, 1000);
        assert!(matches!(t, CcMachine::Tfrc(_)));
        let g = CcMachine::new(
            CcKind::Gtfrc {
                target: Rate::from_mbps(2),
            },
            1000,
        );
        assert!(matches!(g, CcMachine::Gtfrc(_)));
        assert!(g.allowed_rate() >= 250_000.0, "gTFRC floor is the target");
        let f = CcMachine::new(
            CcKind::Fixed {
                rate: Rate::from_kbps(800),
            },
            1000,
        );
        assert_eq!(f.allowed_rate(), 100_000.0);
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "controller_for")]
    fn deprecated_shim_refuses_the_new_kinds() {
        let _ = CcMachine::new(CcKind::Cubic, 1000);
    }
}
