//! The QTP receiver endpoint — where the paper's two instances differ most.
//!
//! In **ReceiverLoss** mode (standard TFRC / QTPAF) the receiver runs the
//! full RFC 3448 machinery: per-packet loss detection, loss-event grouping,
//! loss-interval history, and the WALI computation on every feedback. In
//! **SenderLoss** mode (QTPlight) it keeps *only* a reassembly buffer and a
//! byte counter: feedback is a cumulative ack, up to four SACK blocks, the
//! echo timestamp pair and the raw receive rate. The per-packet cost gap
//! between these two paths — measured by the meters this module aggregates
//! into its [`Probe`] — is the paper's §3 claim, reproduced as experiment
//! E5.
//!
//! The receiver also implements the **selfish receiver** attack of Georg &
//! Gorinsky (paper §3's robustness argument): when `selfish_factor > 1`
//! and the mode is ReceiverLoss, the reported loss event rate is divided
//! by the factor and the receive rate inflated by it. In SenderLoss mode
//! there is no loss report to falsify — which is the defence.
//!
//! Like the sender, the receiver is sans-io: it implements the
//! [`Endpoint`](crate::driver::Endpoint) driver seam and emits its feedback
//! transmissions, timer re-arms and application deliveries as
//! [`Outbox`](crate::driver::Outbox) commands, so the same state machine
//! runs unchanged under the simulator (via
//! [`SimAgent`](crate::adapter::SimAgent)) or over real UDP (via
//! `qtp-io`).

use qtp_metrics::trace::{ConnState, PktKind, TraceEventKind, Tracer};
use qtp_metrics::StateSize;
use qtp_sack::{ReceiverBuffer, ReliabilityMode, MAX_SACK_BLOCKS};
use qtp_simnet::prelude::*;
use qtp_tfrc::TfrcReceiver;
use std::collections::BTreeMap;
use std::time::Duration;

use crate::caps::{CapabilitySet, FeedbackMode, ServerPolicy};
use crate::driver::{Endpoint, Outbox, TimerGens};
use crate::probe::Probe;
use crate::stream::{RecvStream, StreamConfig, StreamRx};
use crate::wire::{p_to_ppb, QtpPacket};

/// Receiver configuration.
#[derive(Debug, Clone)]
pub struct QtpReceiverConfig {
    /// Negotiation policy.
    pub policy: ServerPolicy,
    /// Selfish-receiver attack factor (1.0 = honest). Under ReceiverLoss
    /// the reported `p` is divided by this and `x_recv` multiplied by it.
    pub selfish_factor: f64,
    /// Application data plane: when set, stream payloads are reassembled
    /// into messages surfaced through a [`RecvStream`].
    pub stream: Option<StreamConfig>,
}

impl Default for QtpReceiverConfig {
    fn default() -> Self {
        QtpReceiverConfig {
            policy: ServerPolicy::default(),
            selfish_factor: 1.0,
            stream: None,
        }
    }
}

/// Timer token kinds.
const TK_FB: u64 = 0;

/// The QTP receiver endpoint.
pub struct QtpReceiver {
    /// Incoming data flow (goodput accounting).
    data_flow: FlowId,
    /// Flow id for outgoing feedback packets.
    fb_flow: FlowId,
    sender_node: NodeId,
    cfg: QtpReceiverConfig,
    chosen: Option<CapabilitySet>,
    /// Full RFC 3448 receiver (ReceiverLoss mode only).
    tfrc_rx: Option<TfrcReceiver>,
    /// Reassembly / SACK state (always present: it is cheap, and even
    /// ReceiverLoss+None uses it for duplicate suppression).
    buf: ReceiverBuffer,
    /// ADU submit timestamps of buffered out-of-order packets, for latency
    /// accounting once they deliver.
    pending_adu_ts: BTreeMap<u64, u64>,
    /// Payload bytes per packet (learned from the first data packet).
    payload_bytes: u32,
    /// Sender's RTT hint from the most recent data packet.
    rtt_hint: Duration,
    /// Highest sequence seen (for gap-triggered feedback).
    highest_seen: Option<u64>,
    /// Sender timestamp / local receive time of the newest data packet.
    last_pkt: Option<(SimTime, SimTime)>,
    /// Bytes received since the last feedback.
    bytes_since_fb: u64,
    /// When the current measurement round began.
    round_started: Option<SimTime>,
    /// Light-receiver bookkeeping cost (SenderLoss mode's entire load
    /// beyond the reassembly buffer's own meter).
    own_ops: u64,
    gens: TimerGens<1>,
    probe: Probe,
    /// Stream data plane reassembler (message extraction + TTL drops).
    stream: Option<StreamRx>,
    /// A FIN was processed (close handshake seen from the peer).
    fin_seen: bool,
    /// Observability: typed event emission + per-connection counters.
    /// Shared with [`StreamRx`] so TTL-drop counts have one source of truth.
    tracer: Tracer,
}

impl QtpReceiver {
    pub fn new(
        data_flow: FlowId,
        fb_flow: FlowId,
        sender_node: NodeId,
        cfg: QtpReceiverConfig,
        probe: Probe,
    ) -> Self {
        // Delivery mode is re-locked at negotiation time (`on_syn`).
        let tracer = Tracer::new(0);
        let stream = cfg
            .stream
            .as_ref()
            .map(|_| StreamRx::new(true, tracer.clone()));
        QtpReceiver {
            data_flow,
            fb_flow,
            sender_node,
            cfg,
            chosen: None,
            tfrc_rx: None,
            buf: ReceiverBuffer::new(),
            pending_adu_ts: BTreeMap::new(),
            payload_bytes: 1000,
            rtt_hint: Duration::from_millis(100),
            highest_seen: None,
            last_pkt: None,
            bytes_since_fb: 0,
            round_started: None,
            own_ops: 0,
            gens: TimerGens::new(),
            probe,
            stream,
            fin_seen: false,
            tracer,
        }
    }

    /// This endpoint's [`Tracer`] handle (clones share counters + sink).
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// App-facing handle for the stream data plane (if configured).
    pub fn recv_stream(&self) -> Option<RecvStream> {
        self.stream.as_ref().map(|s| s.handle())
    }

    /// Shared receiver-side stream state, for `Session` event polling.
    pub(crate) fn stream_shared(
        &self,
    ) -> Option<std::rc::Rc<std::cell::RefCell<crate::stream::RecvShared>>> {
        self.stream.as_ref().map(|s| s.shared())
    }

    /// True once the peer's close handshake reached this endpoint and every
    /// deliverable byte was surfaced.
    pub fn finished(&self) -> bool {
        match &self.stream {
            Some(s) => s.is_finished(),
            None => self.fin_seen,
        }
    }

    /// The negotiated profile (after the handshake).
    pub fn negotiated(&self) -> Option<CapabilitySet> {
        self.chosen
    }

    /// Packets delivered to the application so far (in-order runs plus
    /// forward-released ranges) — exposed for differential backend tests.
    pub fn delivered_packets(&self) -> u64 {
        self.buf.delivered_total()
    }

    /// Next expected in-order sequence.
    pub fn cum_ack(&self) -> u64 {
        self.buf.cum_ack()
    }

    fn arm_fb(&mut self, out: &mut Outbox, at: SimTime) {
        out.set_timer_at(at, self.gens.arm(TK_FB));
        self.tracer.emit(
            out.now.as_nanos(),
            TraceEventKind::TimerSet {
                kind: TK_FB as u8,
                at_nanos: at.as_nanos(),
            },
        );
    }

    fn on_syn(&mut self, out: &mut Outbox, ts_nanos: u64, offered: CapabilitySet) {
        let chosen = self
            .chosen
            .unwrap_or_else(|| self.cfg.policy.negotiate(offered));
        if self.chosen.is_none() {
            self.chosen = Some(chosen);
            self.tracer.emit(
                out.now.as_nanos(),
                TraceEventKind::State(ConnState::Connected),
            );
            if chosen.feedback == FeedbackMode::ReceiverLoss {
                self.tfrc_rx = Some(TfrcReceiver::new(self.payload_bytes, self.rtt_hint));
            }
            // Stream delivery mode follows the negotiated reliability: full
            // reliability reassembles an ordered byte stream, everything
            // else delivers one message per packet as they arrive.
            if let Some(srx) = self.stream.as_mut() {
                srx.set_ordered(matches!(chosen.reliability, ReliabilityMode::Full));
            }
        }
        let pkt = QtpPacket::SynAck {
            ts_echo_nanos: ts_nanos,
            chosen,
        };
        let size = pkt.wire_size();
        out.send_new(self.fb_flow, self.sender_node, size, pkt.encode());
        self.tracer.emit(
            out.now.as_nanos(),
            TraceEventKind::PktSent {
                kind: PktKind::SynAck,
                seq: 0,
                bytes: size,
                retx: false,
            },
        );
    }

    fn reliability(&self) -> ReliabilityMode {
        self.chosen
            .map(|c| c.reliability)
            .unwrap_or(ReliabilityMode::None)
    }

    fn on_data(
        &mut self,
        out: &mut Outbox,
        seq: u64,
        ts_nanos: u64,
        adu_ts_nanos: u64,
        rtt_hint_micros: u32,
        payload: u32,
    ) {
        let Some(chosen) = self.chosen else {
            return; // data before handshake: drop
        };
        if payload > 0 {
            self.payload_bytes = payload;
        }
        if rtt_hint_micros > 0 {
            self.rtt_hint = Duration::from_micros(rtt_hint_micros as u64);
        }
        let sender_ts = SimTime::from_nanos(ts_nanos);
        self.last_pkt = Some((sender_ts, out.now));
        self.bytes_since_fb += payload as u64;
        if self.round_started.is_none() {
            self.round_started = Some(out.now);
            // First data packet: start the feedback cadence.
            let at = out.now + self.feedback_interval();
            self.arm_fb(out, at);
        }
        self.own_ops += 3; // counter updates + hint check

        // New-gap detection (drives immediate feedback in QTPlight mode).
        let new_gap = match self.highest_seen {
            Some(h) => seq > h + 1,
            None => false,
        };
        self.highest_seen = Some(self.highest_seen.map_or(seq, |h| h.max(seq)));

        // Heavy path: RFC 3448 receiver machinery.
        let mut loss_event_fb = false;
        if let Some(tfrc) = self.tfrc_rx.as_mut() {
            let action = tfrc.on_data(out.now, seq, sender_ts, self.rtt_hint, payload);
            loss_event_fb = action.feedback_now;
        }

        // Reassembly / delivery.
        let deliver_in_order = self.reliability().retransmits();
        match self.buf.on_packet(seq) {
            qtp_sack::Arrival::Duplicate => {}
            qtp_sack::Arrival::New { delivered } => {
                if deliver_in_order {
                    if delivered > 0 {
                        // This packet plus any buffered run became deliverable.
                        out.app_deliver(self.data_flow, delivered * self.payload_bytes as u64);
                        let now_s = out.now.as_secs_f64();
                        let own_latency = now_s - adu_ts_nanos as f64 / 1e9;
                        // Buffered packets that just flushed.
                        let flushed: Vec<u64> = self
                            .pending_adu_ts
                            .range(..self.buf.cum_ack())
                            .map(|(_, &ts)| ts)
                            .collect();
                        self.pending_adu_ts = self.pending_adu_ts.split_off(&self.buf.cum_ack());
                        self.probe.update(|d| {
                            d.latency_sum_s += own_latency.max(0.0);
                            d.latency_samples += 1;
                            for ts in flushed {
                                d.latency_sum_s += (now_s - ts as f64 / 1e9).max(0.0);
                                d.latency_samples += 1;
                            }
                        });
                    } else {
                        self.pending_adu_ts.insert(seq, adu_ts_nanos);
                    }
                } else {
                    // Unordered delivery: hand every new packet up at once.
                    out.app_deliver(self.data_flow, self.payload_bytes as u64);
                    let lat = (out.now.as_secs_f64() - adu_ts_nanos as f64 / 1e9).max(0.0);
                    self.probe.update(|d| {
                        d.latency_sum_s += lat;
                        d.latency_samples += 1;
                    });
                }
            }
        }

        // Immediate feedback on new loss evidence.
        let immediate = loss_event_fb || (chosen.feedback == FeedbackMode::SenderLoss && new_gap);
        if immediate {
            self.send_feedback(out);
        }
        self.update_probe_costs();
    }

    /// Stream-mode data path: explicit payload bytes, receiver-side TTL
    /// enforcement, and message reassembly via [`StreamRx`].
    #[allow(clippy::too_many_arguments)]
    fn on_stream_data(
        &mut self,
        out: &mut Outbox,
        seq: u64,
        ts_nanos: u64,
        adu_ts_nanos: u64,
        rtt_hint_micros: u32,
        is_retx: bool,
        ttl_micros: u32,
        payload: Vec<u8>,
    ) {
        let Some(chosen) = self.chosen else {
            return; // data before handshake: drop
        };
        if rtt_hint_micros > 0 {
            self.rtt_hint = Duration::from_micros(rtt_hint_micros as u64);
        }
        let sender_ts = SimTime::from_nanos(ts_nanos);
        self.last_pkt = Some((sender_ts, out.now));
        self.bytes_since_fb += payload.len() as u64;
        if self.round_started.is_none() {
            self.round_started = Some(out.now);
            let at = out.now + self.feedback_interval();
            self.arm_fb(out, at);
        }
        self.own_ops += 3;

        let new_gap = match self.highest_seen {
            Some(h) => seq > h + 1,
            None => false,
        };
        self.highest_seen = Some(self.highest_seen.map_or(seq, |h| h.max(seq)));

        let mut loss_event_fb = false;
        if let Some(tfrc) = self.tfrc_rx.as_mut() {
            let action = tfrc.on_data(out.now, seq, sender_ts, self.rtt_hint, payload.len() as u32);
            loss_event_fb = action.feedback_now;
        }

        // Receiver-side TTL enforcement: both timestamps are sender-clock,
        // so the age of this copy is backend-independent. Originals have
        // age 0 — only retransmissions can expire.
        let ttl_eff_micros = if ttl_micros > 0 {
            ttl_micros as u64
        } else {
            match chosen.reliability {
                ReliabilityMode::PartialTtl(ttl) => ttl.as_micros() as u64,
                _ => u64::MAX,
            }
        };
        let age_micros = ts_nanos.saturating_sub(adu_ts_nanos) / 1_000;
        let expired = is_retx && ttl_eff_micros != u64::MAX && age_micros > ttl_eff_micros;

        if expired {
            if matches!(self.buf.on_expired(seq), qtp_sack::Arrival::New { .. }) {
                self.tracer.emit(
                    out.now.as_nanos(),
                    TraceEventKind::PktDropped {
                        seq,
                        age_us: age_micros,
                    },
                );
            }
        } else {
            match self.buf.on_packet(seq) {
                qtp_sack::Arrival::Duplicate => {}
                qtp_sack::Arrival::New { .. } => {
                    out.app_deliver(self.data_flow, payload.len() as u64);
                    let lat = (out.now.as_secs_f64() - adu_ts_nanos as f64 / 1e9).max(0.0);
                    self.probe.update(|d| {
                        d.latency_sum_s += lat;
                        d.latency_samples += 1;
                    });
                    if let Some(srx) = self.stream.as_mut() {
                        srx.on_payload(seq, payload);
                    }
                }
            }
        }
        self.buf.settle_expired();
        if let Some(srx) = self.stream.as_mut() {
            srx.drain(self.buf.cum_ack());
        }

        let immediate = loss_event_fb || (chosen.feedback == FeedbackMode::SenderLoss && new_gap);
        if immediate {
            self.send_feedback(out);
        }
        self.update_probe_costs();
    }

    /// Close handshake: always acknowledge a FIN (the sender retries until
    /// acked), then surface the finish once all deliverable data is in.
    fn on_fin(&mut self, out: &mut Outbox, final_seq: u64) {
        let pkt = QtpPacket::FinAck { final_seq };
        let size = pkt.wire_size();
        out.send_new(self.fb_flow, self.sender_node, size, pkt.encode());
        self.tracer.emit(
            out.now.as_nanos(),
            TraceEventKind::PktSent {
                kind: PktKind::FinAck,
                seq: final_seq,
                bytes: size,
                retx: false,
            },
        );
        if !self.fin_seen {
            self.fin_seen = true;
            self.own_ops += 1;
            self.tracer
                .emit(out.now.as_nanos(), TraceEventKind::State(ConnState::Closed));
        }
        let ordered = self.stream.as_ref().map(|s| s.ordered()).unwrap_or(false);
        if !ordered && self.buf.cum_ack() < final_seq {
            // Non-retransmitting delivery: nothing below final_seq is coming
            // again — move past the holes like a sender FWD would.
            self.on_forward(out, final_seq);
        }
        self.buf.settle_expired();
        if let Some(srx) = self.stream.as_mut() {
            srx.on_fin(final_seq, self.buf.cum_ack());
            srx.drain(self.buf.cum_ack());
        }
    }

    fn update_probe_costs(&mut self) {
        let tfrc_ops = self.tfrc_rx.as_ref().map(|t| t.total_ops()).unwrap_or(0);
        let tfrc_state = self.tfrc_rx.as_ref().map(|t| t.state_bytes()).unwrap_or(0);
        let buf_ops = self.buf.meter.total();
        let buf_state = self.buf.state_bytes();
        let own = self.own_ops;
        self.probe.update(|d| {
            d.rx_data_pkts += 1;
            d.rx_ops = tfrc_ops + buf_ops + own;
            d.rx_state_bytes_peak = d.rx_state_bytes_peak.max(tfrc_state + buf_state);
        });
    }

    fn feedback_interval(&self) -> Duration {
        self.rtt_hint.max(Duration::from_millis(10))
    }

    /// Receive rate over the current round, bytes/second.
    fn x_recv(&self, now: SimTime) -> f64 {
        match self.round_started {
            Some(start) => {
                let dt = now.saturating_since(start).as_secs_f64();
                if dt <= 0.0 {
                    0.0
                } else {
                    self.bytes_since_fb as f64 / dt
                }
            }
            None => 0.0,
        }
    }

    fn send_feedback(&mut self, out: &mut Outbox) {
        let Some(chosen) = self.chosen else { return };
        let Some((last_ts, last_rx_time)) = self.last_pkt else {
            return; // nothing received yet
        };
        let x_recv_honest = self.x_recv(out.now);
        let t_delay = out.now.saturating_since(last_rx_time);
        let selfish = self.cfg.selfish_factor.max(1.0);

        let (p_ppb, x_recv) = match chosen.feedback {
            FeedbackMode::ReceiverLoss => {
                let tfrc = self
                    .tfrc_rx
                    .as_mut()
                    .expect("ReceiverLoss implies TFRC receiver");
                // Build the RFC 3448 report (also rolls the x_recv round
                // inside the TFRC receiver; we use our own counter for the
                // wire value so both modes measure identically).
                let fb = tfrc.build_feedback(out.now);
                let p_honest = fb.map(|f| f.p).unwrap_or(0.0);
                let p_reported = p_honest / selfish;
                self.own_ops += 2;
                (Some(p_to_ppb(p_reported)), x_recv_honest * selfish)
            }
            FeedbackMode::SenderLoss => {
                self.own_ops += 2;
                (None, x_recv_honest * selfish)
            }
        };

        // SACK blocks only when someone consumes them (reliability at the
        // sender, or sender-side loss estimation).
        let blocks =
            if self.reliability().retransmits() || chosen.feedback == FeedbackMode::SenderLoss {
                self.buf.sack_blocks(MAX_SACK_BLOCKS)
            } else {
                Vec::new()
            };

        let cum_ack = self.buf.cum_ack();
        let pkt = QtpPacket::Feedback {
            ts_echo_nanos: last_ts.as_nanos(),
            t_delay_micros: t_delay.as_micros() as u32,
            x_recv: x_recv as u64,
            p_ppb,
            cum_ack,
            blocks,
        };
        let size = pkt.wire_size();
        out.send_new(self.fb_flow, self.sender_node, size, pkt.encode());
        self.tracer.emit(
            out.now.as_nanos(),
            TraceEventKind::PktSent {
                kind: PktKind::Feedback,
                seq: cum_ack,
                bytes: size,
                retx: false,
            },
        );
        self.bytes_since_fb = 0;
        self.round_started = Some(out.now);
        self.probe.update(|d| d.rx_feedback_sent += 1);
    }

    fn on_forward(&mut self, out: &mut Outbox, new_cum: u64) {
        let before_delivered = self.buf.delivered_total();
        self.buf.on_forward(new_cum);
        // Buffered packets released by the jump count as delivered.
        let released = self.buf.delivered_total() - before_delivered;
        // Stream mode accounts delivery per arrival; releasing buffered
        // runs here would double-count.
        if released > 0 && self.reliability().retransmits() && self.stream.is_none() {
            out.app_deliver(self.data_flow, released * self.payload_bytes as u64);
            let flushed: Vec<u64> = self
                .pending_adu_ts
                .range(..self.buf.cum_ack())
                .map(|(_, &ts)| ts)
                .collect();
            self.pending_adu_ts = self.pending_adu_ts.split_off(&self.buf.cum_ack());
            let now_s = out.now.as_secs_f64();
            self.probe.update(|d| {
                for ts in flushed {
                    d.latency_sum_s += (now_s - ts as f64 / 1e9).max(0.0);
                    d.latency_samples += 1;
                }
            });
        }
        self.own_ops += 2;
    }
}

impl Endpoint for QtpReceiver {
    fn handle_datagram(&mut self, out: &mut Outbox, wire_size: u32, header: &[u8]) {
        let header_len = header.len() as u32;
        let Ok(decoded) = QtpPacket::decode(header) else {
            return;
        };
        let now_nanos = out.now.as_nanos();
        match decoded {
            QtpPacket::Syn { ts_nanos, offered } => {
                self.tracer.emit(
                    now_nanos,
                    TraceEventKind::PktRecvd {
                        kind: PktKind::Syn,
                        seq: 0,
                        bytes: wire_size,
                    },
                );
                self.on_syn(out, ts_nanos, offered)
            }
            QtpPacket::Data {
                seq,
                ts_nanos,
                adu_ts_nanos,
                rtt_hint_micros,
                ..
            } => {
                self.tracer.emit(
                    now_nanos,
                    TraceEventKind::PktRecvd {
                        kind: PktKind::Data,
                        seq,
                        bytes: wire_size,
                    },
                );
                let payload = wire_size.saturating_sub(header_len + crate::wire::IP_OVERHEAD);
                self.on_data(out, seq, ts_nanos, adu_ts_nanos, rtt_hint_micros, payload);
            }
            QtpPacket::Forward { new_cum } => {
                self.tracer.emit(
                    now_nanos,
                    TraceEventKind::PktRecvd {
                        kind: PktKind::Forward,
                        seq: new_cum,
                        bytes: wire_size,
                    },
                );
                self.on_forward(out, new_cum);
                self.buf.settle_expired();
                if let Some(srx) = self.stream.as_mut() {
                    srx.drain(self.buf.cum_ack());
                }
            }
            QtpPacket::StreamData {
                seq,
                ts_nanos,
                adu_ts_nanos,
                rtt_hint_micros,
                is_retx,
                ttl_micros,
                payload,
            } => {
                self.tracer.emit(
                    now_nanos,
                    TraceEventKind::PktRecvd {
                        kind: PktKind::Data,
                        seq,
                        bytes: wire_size,
                    },
                );
                self.on_stream_data(
                    out,
                    seq,
                    ts_nanos,
                    adu_ts_nanos,
                    rtt_hint_micros,
                    is_retx,
                    ttl_micros,
                    payload,
                )
            }
            QtpPacket::Fin { final_seq } => {
                self.tracer.emit(
                    now_nanos,
                    TraceEventKind::PktRecvd {
                        kind: PktKind::Fin,
                        seq: final_seq,
                        bytes: wire_size,
                    },
                );
                self.on_fin(out, final_seq)
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, out: &mut Outbox, token: u64) {
        if self.gens.live(token).is_none() {
            self.tracer.emit(
                out.now.as_nanos(),
                TraceEventKind::TimerCancelled {
                    kind: (token & 3) as u8,
                },
            );
            return;
        }
        self.tracer.emit(
            out.now.as_nanos(),
            TraceEventKind::TimerFired { kind: TK_FB as u8 },
        );
        // Periodic feedback: send only if data arrived this round.
        if self.bytes_since_fb > 0 {
            self.send_feedback(out);
        }
        let at = out.now + self.feedback_interval();
        self.arm_fb(out, at);
    }
}
