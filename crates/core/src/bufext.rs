//! Minimal big-endian buffer read/write helpers for the wire codecs.
//!
//! API-compatible with the tiny subset of the `bytes` crate the codecs use
//! (`put_*` on `Vec<u8>`, advancing `get_*`/`remaining` on `&[u8]`), so the
//! runtime crates stay zero-dependency.

pub(crate) trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
}

/// Advancing big-endian reads over a byte slice. Callers must check
/// `remaining()` before reading; reads past the end panic, mirroring the
/// `bytes` crate contract.
pub(crate) trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u16(&mut self) -> u16;
    fn get_u32(&mut self) -> u32;
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_be_bytes(head.try_into().unwrap())
    }

    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_be_bytes(head.try_into().unwrap())
    }

    fn get_u64(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_be_bytes(head.try_into().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u16(0xBEEF);
        out.put_u32(0xDEAD_BEEF);
        out.put_u64(u64::MAX - 1);
        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 15);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16(), 0xBEEF);
        assert_eq!(buf.get_u32(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64(), u64::MAX - 1);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut out = Vec::new();
        out.put_u32(1);
        assert_eq!(out, [0, 0, 0, 1]);
    }
}
