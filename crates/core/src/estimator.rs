//! Sender-side loss-event-rate estimation — the mechanism behind QTPlight
//! (paper §3).
//!
//! Standard TFRC computes the loss event rate `p` at the receiver, which
//! requires the loss-interval history and per-packet loss detection there.
//! QTPlight's receiver sends only SACK feedback; this estimator recreates
//! `p` at the **sender** from the scoreboard's loss declarations:
//!
//! * the scoreboard reports each newly-declared lost sequence together with
//!   its original **send timestamp**;
//! * losses whose send timestamps fall within one RTT of the current loss
//!   event's start belong to the same event (the sender-side analogue of
//!   RFC 3448 §5.2's receive-time rule — equivalent because send spacing
//!   and receive spacing differ only by transit-time jitter);
//! * the loss-interval history and WALI computation are the *same code*
//!   the receiver would have run ([`qtp_tfrc::LossIntervalHistory`]) —
//!   that is the paper's composition argument: the mechanism moved, its
//!   definition did not.
//!
//! A second benefit the paper claims falls out directly: the sender no
//! longer trusts **any** receiver-computed loss figure, so a selfish
//! receiver (Georg & Gorinsky) cannot inflate its bandwidth share by
//! under-reporting losses (experiment E6).

use qtp_simnet::time::SimTime;
use qtp_tfrc::{equation, LossIntervalHistory};
use std::time::Duration;

/// Sender-side loss event estimator.
#[derive(Debug, Clone)]
pub struct SenderLossEstimator {
    history: LossIntervalHistory,
    /// Send timestamp of the first loss of the current event.
    event_start_ts: Option<SimTime>,
    /// Segment size, for first-interval synthesis.
    s: u32,
    /// RFC 3448 §5.2 loss-event grouping (losses within one RTT collapse
    /// into one event). Disabling this is design ablation **D1**: every
    /// lost packet becomes its own event, which overestimates `p` under
    /// bursty loss and depresses the rate (experiment E11).
    grouping: bool,
}

impl SenderLossEstimator {
    pub fn new(s: u32) -> Self {
        SenderLossEstimator {
            history: LossIntervalHistory::new(),
            event_start_ts: None,
            s,
            grouping: true,
        }
    }

    /// Enable/disable RTT-window loss-event grouping (D1 ablation).
    pub fn set_grouping(&mut self, enabled: bool) {
        self.grouping = enabled;
    }

    /// Fold newly-declared losses (sequence + original send time, ascending)
    /// into the event structure.
    ///
    /// * `rtt` — the sender's current RTT estimate (grouping window).
    /// * `x_recv` — most recent receive rate report (for first-interval
    ///   synthesis per RFC 3448 §6.3.1).
    ///
    /// Returns `true` if at least one *new* loss event started.
    pub fn on_losses(&mut self, losses: &[(u64, SimTime)], rtt: Duration, x_recv: f64) -> bool {
        let mut new_event = false;
        for &(seq, send_ts) in losses {
            match self.event_start_ts {
                None => {
                    let p_synth = equation::inverse(
                        self.s,
                        rtt.max(Duration::from_micros(1)),
                        x_recv.max(self.s as f64),
                    );
                    let first_interval = (1.0 / p_synth).max(1.0);
                    self.history.record_first_loss(seq, first_interval);
                    self.event_start_ts = Some(send_ts);
                    new_event = true;
                }
                Some(start) => {
                    let separate = !self.grouping || send_ts > start + rtt;
                    // Sequence numbers must advance for the interval
                    // bookkeeping even in ungrouped mode.
                    if separate && self.history.open_start().is_some_and(|s0| seq > s0) {
                        self.history.record_loss_event(seq);
                        self.event_start_ts = Some(send_ts);
                        new_event = true;
                    }
                }
            }
        }
        new_event
    }

    /// Current loss event rate given the highest sequence the receiver has
    /// seen (cumulative ack + sacked ranges upper bound).
    pub fn loss_event_rate(&mut self, highest_seq_seen: u64) -> f64 {
        self.history.loss_event_rate(highest_seq_seen)
    }

    /// Has any loss event been recorded?
    pub fn has_loss(&self) -> bool {
        self.history.has_loss()
    }

    /// Total estimator operations (sender-side cost ledger for E5).
    pub fn total_ops(&self) -> u64 {
        self.history.meter.total()
    }

    /// Access to the interval history (tests, instrumentation).
    pub fn history(&self) -> &LossIntervalHistory {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u32 = 1000;
    const RTT: Duration = Duration::from_millis(100);

    fn ts(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn no_losses_p_is_zero() {
        let mut e = SenderLossEstimator::new(S);
        assert_eq!(e.loss_event_rate(1000), 0.0);
        assert!(!e.has_loss());
    }

    #[test]
    fn first_loss_synthesizes_interval_from_rate() {
        let mut e = SenderLossEstimator::new(S);
        // 100 kB/s at 100 ms RTT: inverse equation gives a specific p; the
        // first interval is its reciprocal.
        let new_event = e.on_losses(&[(500, ts(5_000))], RTT, 100_000.0);
        assert!(new_event);
        let p = e.loss_event_rate(520);
        let p_expect = equation::inverse(S, RTT, 100_000.0);
        assert!(
            (p - p_expect).abs() / p_expect < 0.01,
            "p={p}, expect={p_expect}"
        );
    }

    #[test]
    fn clustered_losses_are_one_event() {
        let mut e = SenderLossEstimator::new(S);
        // Three losses sent within 100 ms of each other: one event.
        e.on_losses(
            &[(100, ts(1_000)), (101, ts(1_010)), (105, ts(1_050))],
            RTT,
            1e5,
        );
        assert_eq!(e.history().intervals().len(), 1, "only the synthetic one");
    }

    #[test]
    fn spread_losses_are_separate_events() {
        let mut e = SenderLossEstimator::new(S);
        e.on_losses(&[(100, ts(1_000))], RTT, 1e5);
        e.on_losses(&[(200, ts(2_000))], RTT, 1e5);
        e.on_losses(&[(300, ts(3_000))], RTT, 1e5);
        // Synthetic + two closed intervals of 100 packets each.
        assert_eq!(e.history().intervals().len(), 3);
        let closed = &e.history().intervals()[..2];
        assert!(closed.iter().all(|&l| (l - 100.0).abs() < 1e-9));
    }

    #[test]
    fn steady_state_p_matches_loss_pattern() {
        let mut e = SenderLossEstimator::new(S);
        // One loss every 50 packets, events 500 ms apart (>> RTT).
        for k in 1..=30u64 {
            e.on_losses(&[(k * 50, ts(k * 500))], RTT, 1e5);
        }
        let p = e.loss_event_rate(30 * 50 + 1);
        assert!((p - 0.02).abs() < 0.004, "p={p}");
    }

    #[test]
    fn batched_and_incremental_agree() {
        // Feeding losses one-by-one or in one batch gives identical state —
        // needed because feedback packets batch loss declarations.
        let losses: Vec<(u64, SimTime)> = (1..=10).map(|k| (k * 80, ts(k * 400))).collect();
        let mut one = SenderLossEstimator::new(S);
        for l in &losses {
            one.on_losses(std::slice::from_ref(l), RTT, 1e5);
        }
        let mut batch = SenderLossEstimator::new(S);
        batch.on_losses(&losses, RTT, 1e5);
        assert_eq!(one.history().intervals(), batch.history().intervals());
        assert_eq!(one.loss_event_rate(801), batch.loss_event_rate(801));
    }

    #[test]
    fn estimate_tracks_receiver_equivalent() {
        // The core QTPlight equivalence claim (E4 in miniature): feed the
        // estimator the same loss pattern a receiver would see and compare p
        // against a receiver-side history built identically.
        let mut sender_side = SenderLossEstimator::new(S);
        let mut receiver_side = LossIntervalHistory::new();
        receiver_side.record_first_loss(100, 1.0 / equation::inverse(S, RTT, 1e5));
        sender_side.on_losses(&[(100, ts(1_000))], RTT, 1e5);
        for k in 2..=20u64 {
            receiver_side.record_loss_event(k * 100);
            sender_side.on_losses(&[(k * 100, ts(k * 1_000))], RTT, 1e5);
        }
        let hi = 2_050;
        let p_rx = receiver_side.loss_event_rate(hi);
        let p_tx = sender_side.loss_event_rate(hi);
        assert!(
            (p_rx - p_tx).abs() < 1e-12,
            "identical inputs must give identical p: {p_rx} vs {p_tx}"
        );
    }
}
