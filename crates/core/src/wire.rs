//! QTP wire formats.
//!
//! Explicit byte-level encoding (big-endian) of every packet the versatile
//! transport exchanges. The feedback packet is a small TLV-style union that
//! carries exactly the sections the negotiated profile needs:
//!
//! * `ReceiverLoss` feedback carries the RFC 3448 report `(ts_echo,
//!   t_delay, x_recv, p)` plus — when reliability is on — the cumulative
//!   ack and SACK blocks (that is QTPAF's feedback).
//! * `SenderLoss` (QTPlight) feedback omits `p` entirely: `ts_echo,
//!   t_delay, x_recv, cum_ack, blocks` — everything in it is either a raw
//!   counter or produced by the trivial reassembly structure.
//!
//! Loss event rates are carried as parts-per-billion in a `u32`; receive
//! rates as `u64` bytes/second; timestamps as `u64` nanoseconds.

use crate::bufext::{Buf, BufMut};
use qtp_sack::{ReliabilityMode, SeqRange};

use crate::caps::{self, CapabilitySet, CapsError, CcKind, FeedbackMode};

/// Assumed IP-level overhead added to every QTP packet's wire size.
pub const IP_OVERHEAD: u32 = 20;

/// Maximum SACK blocks carried in one feedback packet.
pub const MAX_FB_BLOCKS: usize = 4;

/// Decoded QTP packet.
#[derive(Debug, Clone, PartialEq)]
pub enum QtpPacket {
    /// Connection request with the offered profile and a client timestamp.
    Syn {
        ts_nanos: u64,
        offered: CapabilitySet,
    },
    /// Connection accept: echoes the SYN timestamp, carries the chosen
    /// profile.
    SynAck {
        ts_echo_nanos: u64,
        chosen: CapabilitySet,
    },
    /// Data segment.
    Data {
        seq: u64,
        /// Send timestamp of this copy.
        ts_nanos: u64,
        /// Submission timestamp of the ADU this segment belongs to (for
        /// latency measurement and TTL-based partial reliability).
        adu_ts_nanos: u64,
        /// Sender's current RTT estimate, microseconds (0 = unknown); the
        /// receiver needs it for loss-event grouping and feedback cadence.
        rtt_hint_micros: u32,
        /// Retransmission flag.
        is_retx: bool,
    },
    /// Feedback report (both modes share the frame; `p_ppb` is `None` for
    /// QTPlight feedback).
    Feedback {
        ts_echo_nanos: u64,
        t_delay_micros: u32,
        /// Receive rate, bytes/second.
        x_recv: u64,
        /// Loss event rate in parts per billion (receiver-computed modes).
        p_ppb: Option<u32>,
        /// Cumulative ack (next expected sequence).
        cum_ack: u64,
        /// SACK blocks, most recently changed first.
        blocks: Vec<SeqRange>,
    },
    /// Move the receiver past abandoned data (partial reliability).
    Forward { new_cum: u64 },
    /// Data segment carrying real application payload bytes (the stream
    /// data plane). Same sequencing/timestamp fields as [`QtpPacket::Data`]
    /// plus an explicit payload and an optional per-message TTL tag —
    /// unlike `Data`, whose simulated payload exists only as a wire-size
    /// account, the payload here is materialized on the wire.
    StreamData {
        seq: u64,
        /// Send timestamp of this copy.
        ts_nanos: u64,
        /// Submission timestamp of the message this segment belongs to.
        adu_ts_nanos: u64,
        /// Sender's current RTT estimate, microseconds (0 = unknown).
        rtt_hint_micros: u32,
        /// Retransmission flag.
        is_retx: bool,
        /// Per-message TTL tag in microseconds; 0 means "use the
        /// negotiated profile TTL" (receivers fall back to it).
        ttl_micros: u32,
        /// Application payload bytes.
        payload: Vec<u8>,
    },
    /// Wire-level close request: the sender is done after `final_seq`
    /// sequences (exclusive). Retransmitted until a [`QtpPacket::FinAck`]
    /// arrives.
    Fin { final_seq: u64 },
    /// Acknowledges a [`QtpPacket::Fin`]; echoes its `final_seq`.
    FinAck { final_seq: u64 },
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    Truncated,
    BadType(u8),
    /// A capability field failed to decode; carries the axis and the
    /// offending wire code (see [`CapsError`]).
    BadCapability(CapsError),
    BadBlockCount(u8),
    BadBlock,
}

const T_SYN: u8 = 1;
const T_SYNACK: u8 = 2;
const T_DATA: u8 = 3;
const T_FEEDBACK: u8 = 4;
const T_FORWARD: u8 = 5;
const T_STREAM_DATA: u8 = 6;
const T_FIN: u8 = 7;
const T_FINACK: u8 = 8;

/// Largest payload a single [`QtpPacket::StreamData`] may carry (the
/// length travels as a `u16`, and frames are bounded at the I/O layer).
pub const MAX_STREAM_PAYLOAD: usize = 1400;

fn put_caps(out: &mut Vec<u8>, caps: &CapabilitySet) {
    out.put_u8(caps.reliability.wire_code());
    let rel_param: u64 = match caps.reliability {
        ReliabilityMode::PartialTtl(d) => d.as_micros() as u64,
        ReliabilityMode::PartialRetx(n) => n as u64,
        _ => 0,
    };
    out.put_u64(rel_param);
    out.put_u8(caps.feedback.wire_code());
    out.put_u8(caps.cc.wire_code());
    let cc_param: u64 = match caps.cc {
        CcKind::Gtfrc { target } => target.bps(),
        CcKind::Fixed { rate } => rate.bps(),
        CcKind::Tfrc | CcKind::Cubic | CcKind::BbrLite => 0,
    };
    out.put_u64(cc_param);
}

fn get_caps(buf: &mut &[u8]) -> Result<CapabilitySet, WireError> {
    if buf.remaining() < 19 {
        return Err(WireError::Truncated);
    }
    let rel_code = buf.get_u8();
    let rel_param = buf.get_u64();
    let reliability =
        caps::reliability_from_wire(rel_code, rel_param).map_err(WireError::BadCapability)?;
    let feedback = FeedbackMode::from_wire(buf.get_u8()).map_err(WireError::BadCapability)?;
    let cc_code = buf.get_u8();
    let cc_param = buf.get_u64();
    let cc = caps::cc_from_wire(cc_code, cc_param).map_err(WireError::BadCapability)?;
    Ok(CapabilitySet {
        reliability,
        feedback,
        cc,
    })
}

/// Whether a header's packet type carries a capability set (SYN/SYNACK) —
/// the only packets whose decode can fail with
/// [`WireError::BadCapability`]. Lets drivers skip a speculative decode of
/// the (much more frequent) data and feedback traffic.
pub fn carries_capabilities(header: &[u8]) -> bool {
    matches!(header.first(), Some(&T_SYN) | Some(&T_SYNACK))
}

/// Whether a header's packet type is part of the close handshake
/// (FIN/FIN-ACK). Sessions that have locally closed still service these,
/// so a lost FIN-ACK never strands the peer in its drain state.
pub fn is_close_handshake(header: &[u8]) -> bool {
    matches!(header.first(), Some(&T_FIN) | Some(&T_FINACK))
}

impl QtpPacket {
    /// Encode to header bytes (excluding simulated payload and IP overhead).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            QtpPacket::Syn { ts_nanos, offered } => {
                out.put_u8(T_SYN);
                out.put_u64(*ts_nanos);
                put_caps(&mut out, offered);
            }
            QtpPacket::SynAck {
                ts_echo_nanos,
                chosen,
            } => {
                out.put_u8(T_SYNACK);
                out.put_u64(*ts_echo_nanos);
                put_caps(&mut out, chosen);
            }
            QtpPacket::Data {
                seq,
                ts_nanos,
                adu_ts_nanos,
                rtt_hint_micros,
                is_retx,
            } => {
                out.put_u8(T_DATA);
                out.put_u64(*seq);
                out.put_u64(*ts_nanos);
                out.put_u64(*adu_ts_nanos);
                out.put_u32(*rtt_hint_micros);
                out.put_u8(u8::from(*is_retx));
            }
            QtpPacket::Feedback {
                ts_echo_nanos,
                t_delay_micros,
                x_recv,
                p_ppb,
                cum_ack,
                blocks,
            } => {
                out.put_u8(T_FEEDBACK);
                out.put_u8(u8::from(p_ppb.is_some()));
                out.put_u64(*ts_echo_nanos);
                out.put_u32(*t_delay_micros);
                out.put_u64(*x_recv);
                out.put_u32(p_ppb.unwrap_or(0));
                out.put_u64(*cum_ack);
                debug_assert!(blocks.len() <= MAX_FB_BLOCKS);
                out.put_u8(blocks.len() as u8);
                for b in blocks {
                    out.put_u64(b.start);
                    out.put_u64(b.end);
                }
            }
            QtpPacket::Forward { new_cum } => {
                out.put_u8(T_FORWARD);
                out.put_u64(*new_cum);
            }
            QtpPacket::StreamData {
                seq,
                ts_nanos,
                adu_ts_nanos,
                rtt_hint_micros,
                is_retx,
                ttl_micros,
                payload,
            } => {
                out.put_u8(T_STREAM_DATA);
                out.put_u64(*seq);
                out.put_u64(*ts_nanos);
                out.put_u64(*adu_ts_nanos);
                out.put_u32(*rtt_hint_micros);
                out.put_u8(u8::from(*is_retx));
                out.put_u32(*ttl_micros);
                debug_assert!(payload.len() <= MAX_STREAM_PAYLOAD);
                out.put_u16(payload.len() as u16);
                out.extend_from_slice(payload);
            }
            QtpPacket::Fin { final_seq } => {
                out.put_u8(T_FIN);
                out.put_u64(*final_seq);
            }
            QtpPacket::FinAck { final_seq } => {
                out.put_u8(T_FINACK);
                out.put_u64(*final_seq);
            }
        }
        out
    }

    /// Wire size of the encoded header plus IP overhead (no payload).
    pub fn wire_size(&self) -> u32 {
        self.encode().len() as u32 + IP_OVERHEAD
    }

    /// Decode from header bytes.
    pub fn decode(mut buf: &[u8]) -> Result<Self, WireError> {
        if buf.is_empty() {
            return Err(WireError::Truncated);
        }
        let t = buf.get_u8();
        match t {
            T_SYN => {
                if buf.remaining() < 8 {
                    return Err(WireError::Truncated);
                }
                let ts_nanos = buf.get_u64();
                let offered = get_caps(&mut buf)?;
                Ok(QtpPacket::Syn { ts_nanos, offered })
            }
            T_SYNACK => {
                if buf.remaining() < 8 {
                    return Err(WireError::Truncated);
                }
                let ts_echo_nanos = buf.get_u64();
                let chosen = get_caps(&mut buf)?;
                Ok(QtpPacket::SynAck {
                    ts_echo_nanos,
                    chosen,
                })
            }
            T_DATA => {
                if buf.remaining() < 29 {
                    return Err(WireError::Truncated);
                }
                Ok(QtpPacket::Data {
                    seq: buf.get_u64(),
                    ts_nanos: buf.get_u64(),
                    adu_ts_nanos: buf.get_u64(),
                    rtt_hint_micros: buf.get_u32(),
                    is_retx: buf.get_u8() != 0,
                })
            }
            T_FEEDBACK => {
                if buf.remaining() < 34 {
                    return Err(WireError::Truncated);
                }
                let has_p = buf.get_u8() != 0;
                let ts_echo_nanos = buf.get_u64();
                let t_delay_micros = buf.get_u32();
                let x_recv = buf.get_u64();
                let p_raw = buf.get_u32();
                let cum_ack = buf.get_u64();
                let n = buf.get_u8();
                if n as usize > MAX_FB_BLOCKS || buf.remaining() < 16 * n as usize {
                    return Err(WireError::BadBlockCount(n));
                }
                let mut blocks = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let start = buf.get_u64();
                    let end = buf.get_u64();
                    if end <= start {
                        return Err(WireError::BadBlock);
                    }
                    blocks.push(SeqRange::new(start, end));
                }
                Ok(QtpPacket::Feedback {
                    ts_echo_nanos,
                    t_delay_micros,
                    x_recv,
                    p_ppb: has_p.then_some(p_raw),
                    cum_ack,
                    blocks,
                })
            }
            T_FORWARD => {
                if buf.remaining() < 8 {
                    return Err(WireError::Truncated);
                }
                Ok(QtpPacket::Forward {
                    new_cum: buf.get_u64(),
                })
            }
            T_STREAM_DATA => {
                if buf.remaining() < 35 {
                    return Err(WireError::Truncated);
                }
                let seq = buf.get_u64();
                let ts_nanos = buf.get_u64();
                let adu_ts_nanos = buf.get_u64();
                let rtt_hint_micros = buf.get_u32();
                let is_retx = buf.get_u8() != 0;
                let ttl_micros = buf.get_u32();
                let len = buf.get_u16() as usize;
                if len > MAX_STREAM_PAYLOAD || buf.remaining() < len {
                    return Err(WireError::Truncated);
                }
                Ok(QtpPacket::StreamData {
                    seq,
                    ts_nanos,
                    adu_ts_nanos,
                    rtt_hint_micros,
                    is_retx,
                    ttl_micros,
                    payload: buf[..len].to_vec(),
                })
            }
            T_FIN => {
                if buf.remaining() < 8 {
                    return Err(WireError::Truncated);
                }
                Ok(QtpPacket::Fin {
                    final_seq: buf.get_u64(),
                })
            }
            T_FINACK => {
                if buf.remaining() < 8 {
                    return Err(WireError::Truncated);
                }
                Ok(QtpPacket::FinAck {
                    final_seq: buf.get_u64(),
                })
            }
            other => Err(WireError::BadType(other)),
        }
    }
}

/// Encode a loss event rate as parts-per-billion.
pub fn p_to_ppb(p: f64) -> u32 {
    (p.clamp(0.0, 1.0) * 1e9).round() as u32
}

/// Decode a parts-per-billion loss event rate.
pub fn ppb_to_p(ppb: u32) -> f64 {
    ppb as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtp_simnet::time::Rate;
    use std::time::Duration;

    fn roundtrip(pkt: QtpPacket) {
        let bytes = pkt.encode();
        assert_eq!(QtpPacket::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn syn_roundtrips_all_profiles() {
        let mut cubic = CapabilitySet::tfrc_standard();
        cubic.cc = CcKind::Cubic;
        let mut bbr = CapabilitySet::tfrc_standard();
        bbr.cc = CcKind::BbrLite;
        for caps in [
            CapabilitySet::qtp_af(Rate::from_mbps(3)),
            CapabilitySet::qtp_light(),
            CapabilitySet::qtp_light_partial(Duration::from_millis(150)),
            CapabilitySet::tfrc_standard(),
            cubic,
            bbr,
        ] {
            roundtrip(QtpPacket::Syn {
                ts_nanos: 123_456_789,
                offered: caps,
            });
            roundtrip(QtpPacket::SynAck {
                ts_echo_nanos: 42,
                chosen: caps,
            });
        }
    }

    /// An attacker (or a newer peer) can put any byte in the SYN's cc-code
    /// slot; every unassigned code must come back as a typed
    /// `BadCapability`, never a panic or a silently wrong controller.
    #[test]
    fn unknown_cc_code_in_syn_decodes_to_bad_capability() {
        let mut bytes = QtpPacket::Syn {
            ts_nanos: 1,
            offered: CapabilitySet::tfrc_standard(),
        }
        .encode();
        // Layout: type(1) + ts(8) + rel code(1) + rel param(8) + fb(1),
        // then the cc code byte.
        let cc_off = 1 + 8 + 1 + 8 + 1;
        assert_eq!(bytes[cc_off], CcKind::Tfrc.wire_code());
        for bad in [5u8, 17, 255] {
            bytes[cc_off] = bad;
            assert_eq!(
                QtpPacket::decode(&bytes),
                Err(WireError::BadCapability(caps::CapsError::BadCc(bad)))
            );
        }
        // Restoring a valid code decodes again (the mutation above was the
        // only corruption).
        bytes[cc_off] = CcKind::Cubic.wire_code();
        match QtpPacket::decode(&bytes).unwrap() {
            QtpPacket::Syn { offered, .. } => assert_eq!(offered.cc, CcKind::Cubic),
            other => panic!("unexpected packet {other:?}"),
        }
    }

    #[test]
    fn data_roundtrip() {
        roundtrip(QtpPacket::Data {
            seq: 9_999,
            ts_nanos: 77,
            adu_ts_nanos: 55,
            rtt_hint_micros: 100_000,
            is_retx: true,
        });
    }

    #[test]
    fn feedback_roundtrip_with_and_without_p() {
        roundtrip(QtpPacket::Feedback {
            ts_echo_nanos: 1,
            t_delay_micros: 2,
            x_recv: 125_000,
            p_ppb: Some(p_to_ppb(0.0123)),
            cum_ack: 10,
            blocks: vec![SeqRange::new(12, 14), SeqRange::new(20, 21)],
        });
        roundtrip(QtpPacket::Feedback {
            ts_echo_nanos: 1,
            t_delay_micros: 2,
            x_recv: 0,
            p_ppb: None,
            cum_ack: 0,
            blocks: vec![],
        });
    }

    #[test]
    fn forward_roundtrip() {
        roundtrip(QtpPacket::Forward { new_cum: 1 << 40 });
    }

    #[test]
    fn stream_data_roundtrip() {
        roundtrip(QtpPacket::StreamData {
            seq: 1234,
            ts_nanos: 5_000_000,
            adu_ts_nanos: 4_000_000,
            rtt_hint_micros: 20_000,
            is_retx: true,
            ttl_micros: 150_000,
            payload: vec![0xAB; 700],
        });
        roundtrip(QtpPacket::StreamData {
            seq: 0,
            ts_nanos: 0,
            adu_ts_nanos: 0,
            rtt_hint_micros: 0,
            is_retx: false,
            ttl_micros: 0,
            payload: Vec::new(),
        });
    }

    #[test]
    fn stream_data_truncated_payload_rejected() {
        let bytes = QtpPacket::StreamData {
            seq: 7,
            ts_nanos: 1,
            adu_ts_nanos: 1,
            rtt_hint_micros: 0,
            is_retx: false,
            ttl_micros: 0,
            payload: vec![1, 2, 3, 4],
        }
        .encode();
        // Cut into the payload: the declared length no longer fits.
        assert_eq!(
            QtpPacket::decode(&bytes[..bytes.len() - 2]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn fin_and_finack_roundtrip() {
        roundtrip(QtpPacket::Fin { final_seq: 1 << 33 });
        roundtrip(QtpPacket::FinAck { final_seq: 99 });
        assert!(is_close_handshake(
            &QtpPacket::Fin { final_seq: 1 }.encode()
        ));
        assert!(is_close_handshake(
            &QtpPacket::FinAck { final_seq: 1 }.encode()
        ));
        assert!(!is_close_handshake(
            &QtpPacket::Forward { new_cum: 1 }.encode()
        ));
    }

    #[test]
    fn ppb_precision() {
        for &p in &[0.0, 1e-6, 0.01, 0.5, 1.0] {
            assert!((ppb_to_p(p_to_ppb(p)) - p).abs() < 1e-9);
        }
        assert_eq!(p_to_ppb(2.0), 1_000_000_000, "clamped");
    }

    #[test]
    fn truncation_rejected() {
        let bytes = QtpPacket::Data {
            seq: 1,
            ts_nanos: 2,
            adu_ts_nanos: 3,
            rtt_hint_micros: 4,
            is_retx: false,
        }
        .encode();
        for cut in [0, 1, 10, bytes.len() - 1] {
            assert!(
                QtpPacket::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bad_type_rejected() {
        assert_eq!(QtpPacket::decode(&[99]), Err(WireError::BadType(99)));
    }

    #[test]
    fn inverted_feedback_block_rejected() {
        let good = QtpPacket::Feedback {
            ts_echo_nanos: 1,
            t_delay_micros: 2,
            x_recv: 3,
            p_ppb: None,
            cum_ack: 4,
            blocks: vec![SeqRange::new(5, 8)],
        };
        let mut bytes = good.encode();
        let n = bytes.len();
        // Swap start and end.
        let (s, e) = (5u64.to_be_bytes(), 8u64.to_be_bytes());
        bytes[n - 16..n - 8].copy_from_slice(&e);
        bytes[n - 8..].copy_from_slice(&s);
        assert_eq!(QtpPacket::decode(&bytes), Err(WireError::BadBlock));
    }

    #[test]
    fn feedback_is_small_on_the_wire() {
        // The QTPlight feedback packet must be tiny — that is the point.
        let fb = QtpPacket::Feedback {
            ts_echo_nanos: u64::MAX,
            t_delay_micros: u32::MAX,
            x_recv: u64::MAX,
            p_ppb: None,
            cum_ack: u64::MAX,
            blocks: vec![],
        };
        assert!(fb.wire_size() <= 75, "feedback size {}", fb.wire_size());
    }
}
