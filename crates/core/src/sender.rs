//! The QTP sender endpoint: the composed transport (paper §1's "versatile
//! transport protocol" on the sending side).
//!
//! One state machine hosts every negotiated composition:
//!
//! * **congestion control** — the negotiated
//!   [`CongestionControl`](qtp_cc::CongestionControl) controller (TFRC,
//!   gTFRC, fixed rate, CUBIC, or BBR-lite — see
//!   [`controller_for`](crate::cc::controller_for)) paces transmissions;
//! * **reliability** — a [`Scoreboard`] + [`ReliabilityPolicy`] decide
//!   which declared losses to retransmit and which to abandon (emitting
//!   `FWD` to move the receiver past them);
//! * **feedback** — in `ReceiverLoss` mode the loss event rate comes from
//!   the feedback packet; in `SenderLoss` (QTPlight) mode it comes from
//!   the local [`SenderLossEstimator`] fed by SACK declarations.
//!
//! The endpoint is sans-io: it implements the transport-neutral
//! [`Endpoint`](crate::driver::Endpoint) seam, reacting to datagrams and
//! timers and emitting transmit/timer commands into an
//! [`Outbox`](crate::driver::Outbox). Drivers decide what those commands
//! mean — [`SimAgent`](crate::adapter::SimAgent) replays them into the
//! discrete-event simulator, `qtp-io`'s `UdpDriver` onto a real UDP socket.
//!
//! [`ReliabilityPolicy`]: qtp_sack::ReliabilityPolicy

use qtp_metrics::trace::{ConnState, PktKind, TraceEventKind, Tracer};
use qtp_sack::{ReliabilityMode, Scoreboard, SeqRange};
use qtp_simnet::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

use qtp_cc::{CcState, CongestionControl, FeedbackReport};

use crate::caps::{CapabilitySet, FeedbackMode};
use crate::cc::controller_for;
use crate::driver::{Endpoint, Outbox, TimerGens};
use crate::estimator::SenderLossEstimator;
use crate::probe::Probe;
use crate::stream::{SendStream, StreamConfig, StreamTx};
use crate::wire::{ppb_to_p, QtpPacket, IP_OVERHEAD, MAX_STREAM_PAYLOAD};

/// What the application on top of the sender does.
#[derive(Debug, Clone)]
pub enum AppModel {
    /// Infinite backlog (bulk transfer / greedy source).
    Greedy,
    /// Send exactly this many packets, then stop (but keep retransmitting
    /// until acknowledged under reliable modes).
    Finite { packets: u64 },
    /// Application-limited media source: ADUs of `adu_packets` packets
    /// generated at `rate`; stale ADUs may be dropped at the sender under
    /// TTL reliability before ever being transmitted.
    Cbr { rate: Rate, adu_packets: u32 },
}

impl AppModel {
    /// A media-like source: `rate` worth of 1-packet ADUs.
    pub fn cbr(rate: Rate) -> AppModel {
        AppModel::Cbr {
            rate,
            adu_packets: 1,
        }
    }
}

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct QtpSenderConfig {
    /// Profile to offer in the handshake.
    pub offered: CapabilitySet,
    /// Payload bytes per data packet.
    pub s: u32,
    /// Application model.
    pub app: AppModel,
    /// **D1 ablation** (experiments only): disable RTT-window loss-event
    /// grouping in the sender-side estimator, so every lost packet counts
    /// as its own loss event.
    pub ablate_ungrouped_losses: bool,
    /// Application data plane: when set, traffic comes from a
    /// [`SendStream`] instead of the synthetic [`AppModel`].
    pub stream: Option<StreamConfig>,
}

impl QtpSenderConfig {
    pub fn new(offered: CapabilitySet) -> Self {
        QtpSenderConfig {
            offered,
            s: 1000,
            app: AppModel::Greedy,
            ablate_ungrouped_losses: false,
            stream: None,
        }
    }
}

/// Timer token kinds (low 2 bits of the token; the rest is a generation —
/// see [`TimerGens`]).
const TK_SYN: u64 = 0;
const TK_PACE: u64 = 1;
const TK_NOFB: u64 = 2;
const TK_APP: u64 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    AwaitSynAck,
    Running,
}

/// The QTP sender endpoint.
pub struct QtpSender {
    flow: FlowId,
    receiver_node: NodeId,
    cfg: QtpSenderConfig,
    state: State,
    chosen: Option<CapabilitySet>,
    cc: Option<Box<dyn CongestionControl>>,
    /// Last controller phase code surfaced in the trace (BBR-lite), so
    /// transitions emit exactly one `CcPhaseChange`.
    last_cc_phase: Option<u8>,
    sb: Scoreboard,
    policy: qtp_sack::ReliabilityPolicy,
    estimator: Option<SenderLossEstimator>,
    /// Pending application packets: submission time of each not-yet-sent
    /// packet (only bounded for the Cbr model).
    backlog: std::collections::VecDeque<SimTime>,
    /// Packets handed to the network as *new* data so far.
    sent_new: u64,
    /// ADU submission time per sequence (for retransmission headers and
    /// latency measurement); pruned as the cumulative ack advances.
    adu_ts: BTreeMap<u64, SimTime>,
    /// Timer generations per token kind.
    gens: TimerGens<4>,
    /// Last time a FWD was emitted (rate-limited to once per RTT).
    last_fwd: SimTime,
    /// Latest receive-rate report (for estimator synthesis).
    last_x_recv: f64,
    probe: Probe,
    /// Stream data plane (replaces `cfg.app` as the traffic source).
    stream: Option<StreamTx>,
    /// Sent stream chunks retained for retransmission; pruned as the
    /// cumulative ack advances and on abandonment.
    chunks: BTreeMap<u64, StreamChunk>,
    /// `Session::close` requested a graceful shutdown.
    close_requested: bool,
    /// When the last FIN copy went out (None = not yet sent).
    fin_sent_at: Option<SimTime>,
    fin_retries: u32,
    fin_acked: bool,
    /// Terminal: close handshake finished (or given up on); timers are no
    /// longer re-armed so driver timer state drains naturally.
    closed: bool,
    /// Observability: typed event emission + per-connection counters.
    tracer: Tracer,
}

/// A sent stream chunk retained for retransmission.
#[derive(Clone)]
struct StreamChunk {
    bytes: Vec<u8>,
    adu_ts: SimTime,
    ttl_micros: u32,
}

/// FIN retransmission attempts before closing unilaterally.
const FIN_MAX_RETRIES: u32 = 8;

impl QtpSender {
    pub fn new(flow: FlowId, receiver_node: NodeId, cfg: QtpSenderConfig, probe: Probe) -> Self {
        let policy = qtp_sack::ReliabilityPolicy::new(cfg.offered.reliability);
        let chunked = matches!(cfg.offered.reliability, ReliabilityMode::Full);
        let stream = cfg.stream.as_ref().map(|sc| StreamTx::new(sc, chunked));
        QtpSender {
            flow,
            receiver_node,
            cfg,
            state: State::AwaitSynAck,
            chosen: None,
            cc: None,
            last_cc_phase: None,
            sb: Scoreboard::new(),
            policy,
            estimator: None,
            backlog: std::collections::VecDeque::new(),
            sent_new: 0,
            adu_ts: BTreeMap::new(),
            gens: TimerGens::new(),
            last_fwd: SimTime::ZERO,
            last_x_recv: 0.0,
            probe,
            stream,
            chunks: BTreeMap::new(),
            close_requested: false,
            fin_sent_at: None,
            fin_retries: 0,
            fin_acked: false,
            closed: false,
            tracer: Tracer::new(0),
        }
    }

    /// This endpoint's [`Tracer`] handle (clones share counters + sink).
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// App-facing handle for the stream data plane (if configured).
    pub fn send_stream(&self) -> Option<SendStream> {
        self.stream.as_ref().map(|s| s.handle())
    }

    /// Shared sender-side stream state, for `Session` event polling.
    pub(crate) fn stream_shared(
        &self,
    ) -> Option<std::rc::Rc<std::cell::RefCell<crate::stream::SendShared>>> {
        self.stream.as_ref().map(|s| s.shared())
    }

    /// Starts a graceful shutdown: stop accepting new data, drain, then run
    /// the FIN / FIN-ACK handshake from the pace timer.
    pub fn begin_close(&mut self) {
        self.close_requested = true;
        if let Some(s) = &self.stream {
            s.handle().finish();
        }
        if self.state != State::Running {
            // Nothing on the wire yet: close locally.
            self.closed = true;
        }
    }

    /// True once the wire-level close handshake completed (FIN acknowledged
    /// or retries exhausted).
    pub fn close_complete(&self) -> bool {
        self.closed
    }

    /// The negotiated profile (once the handshake completed).
    pub fn negotiated(&self) -> Option<CapabilitySet> {
        self.chosen
    }

    /// Whether every packet handed to the network has been acknowledged
    /// (loop-termination signal for real-I/O drivers).
    pub fn all_acked(&self) -> bool {
        self.sb.all_acked()
    }

    /// New (never-retransmitted) packets handed to the network so far.
    pub fn sent_new(&self) -> u64 {
        self.sent_new
    }

    // ---- timers -------------------------------------------------------

    fn arm(&mut self, out: &mut Outbox, kind: u64, at: SimTime) {
        out.set_timer_at(at, self.gens.arm(kind));
        self.tracer.emit(
            out.now.as_nanos(),
            TraceEventKind::TimerSet {
                kind: kind as u8,
                at_nanos: at.as_nanos(),
            },
        );
    }

    // ---- handshake ----------------------------------------------------

    fn send_syn(&mut self, out: &mut Outbox) {
        let pkt = QtpPacket::Syn {
            ts_nanos: out.now.as_nanos(),
            offered: self.cfg.offered,
        };
        let size = pkt.wire_size();
        out.send_new(self.flow, self.receiver_node, size, pkt.encode());
        self.tracer.emit(
            out.now.as_nanos(),
            TraceEventKind::PktSent {
                kind: PktKind::Syn,
                seq: 0,
                bytes: size,
                retx: false,
            },
        );
        self.arm(out, TK_SYN, out.now + Duration::from_secs(1));
    }

    fn on_synack(&mut self, out: &mut Outbox, ts_echo_nanos: u64, chosen: CapabilitySet) {
        if self.state == State::Running {
            return; // duplicate SYNACK
        }
        self.state = State::Running;
        self.chosen = Some(chosen);
        self.tracer.emit(
            out.now.as_nanos(),
            TraceEventKind::State(ConnState::Connected),
        );
        let rtt = out
            .now
            .saturating_since(SimTime::from_nanos(ts_echo_nanos))
            .max(Duration::from_micros(100));
        let mut cc = controller_for(chosen.cc, self.cfg.s);
        cc.seed_rtt(out.now, rtt);
        self.cc = Some(cc);
        self.policy = qtp_sack::ReliabilityPolicy::new(chosen.reliability);
        if chosen.feedback == FeedbackMode::SenderLoss {
            let mut est = SenderLossEstimator::new(self.cfg.s);
            est.set_grouping(!self.cfg.ablate_ungrouped_losses);
            self.estimator = Some(est);
        }
        // Negotiation may have changed the reliability class; re-lock the
        // stream framing mode before any stream data goes out.
        if let Some(s) = &self.stream {
            s.set_chunked(matches!(chosen.reliability, ReliabilityMode::Full));
        }
        // Kick off app generation (Cbr) and pacing.
        if let AppModel::Cbr { .. } = self.cfg.app {
            self.arm(out, TK_APP, out.now);
        }
        self.arm(out, TK_PACE, out.now);
        let nofb = self.cc.as_ref().unwrap().nofeedback_deadline();
        self.arm(out, TK_NOFB, nofb);
    }

    // ---- application --------------------------------------------------

    /// Is a new (never-sent) packet available right now?
    fn app_has_data(&self) -> bool {
        if let Some(s) = &self.stream {
            return s.has_data();
        }
        if self.close_requested {
            return false;
        }
        match self.cfg.app {
            AppModel::Greedy => true,
            AppModel::Finite { packets } => self.sent_new < packets,
            AppModel::Cbr { .. } => !self.backlog.is_empty(),
        }
    }

    /// Submission time of the next new packet.
    fn next_submit_ts(&mut self, now: SimTime) -> SimTime {
        match self.cfg.app {
            AppModel::Cbr { .. } => self.backlog.pop_front().unwrap_or(now),
            _ => now,
        }
    }

    fn on_app_tick(&mut self, out: &mut Outbox) {
        if self.closed {
            return;
        }
        let AppModel::Cbr { rate, adu_packets } = self.cfg.app else {
            return;
        };
        for _ in 0..adu_packets {
            self.backlog.push_back(out.now);
        }
        let interval = Duration::from_secs_f64(
            adu_packets as f64 * self.cfg.s as f64 * 8.0 / rate.bps() as f64,
        );
        self.arm(out, TK_APP, out.now + interval);
    }

    /// Sender-side staleness drop (TTL reliability, Cbr model): stale ADUs
    /// are discarded before ever being transmitted.
    fn drop_stale_backlog(&mut self, now: SimTime) {
        if let ReliabilityMode::PartialTtl(ttl) = self
            .chosen
            .map(|c| c.reliability)
            .unwrap_or(ReliabilityMode::None)
        {
            while let Some(&submit) = self.backlog.front() {
                if now.saturating_since(submit) >= ttl {
                    self.backlog.pop_front();
                    self.probe.update(|d| d.tx_abandoned += 1);
                    self.tracer
                        .emit(now.as_nanos(), TraceEventKind::PktExpired { seq: 0 });
                } else {
                    break;
                }
            }
        }
    }

    // ---- transmission -------------------------------------------------

    fn data_wire_size(&self, header_len: usize) -> u32 {
        self.cfg.s + header_len as u32 + IP_OVERHEAD
    }

    fn send_data(&mut self, out: &mut Outbox, seq: u64, adu_ts: SimTime, is_retx: bool) {
        let rtt_hint_micros = self
            .cc
            .as_ref()
            .and_then(|cc| cc.rtt())
            .map(|r| r.as_micros() as u32)
            .unwrap_or(0);
        let pkt = QtpPacket::Data {
            seq,
            ts_nanos: out.now.as_nanos(),
            adu_ts_nanos: adu_ts.as_nanos(),
            rtt_hint_micros,
            is_retx,
        };
        let header = pkt.encode();
        let size = self.data_wire_size(header.len());
        out.send_new(self.flow, self.receiver_node, size, header);
        if let Some(cc) = self.cc.as_mut() {
            cc.on_send(out.now, size);
        }
        self.tracer.emit(
            out.now.as_nanos(),
            TraceEventKind::PktSent {
                kind: PktKind::Data,
                seq,
                bytes: size,
                retx: is_retx,
            },
        );
        self.probe.update(|d| {
            d.tx_data_pkts += 1;
            if is_retx {
                d.tx_retransmissions += 1;
            }
        });
    }

    fn send_stream_data(&mut self, out: &mut Outbox, seq: u64, chunk: &StreamChunk, is_retx: bool) {
        let rtt_hint_micros = self
            .cc
            .as_ref()
            .and_then(|cc| cc.rtt())
            .map(|r| r.as_micros() as u32)
            .unwrap_or(0);
        let pkt = QtpPacket::StreamData {
            seq,
            ts_nanos: out.now.as_nanos(),
            adu_ts_nanos: chunk.adu_ts.as_nanos(),
            rtt_hint_micros,
            is_retx,
            ttl_micros: chunk.ttl_micros,
            payload: chunk.bytes.clone(),
        };
        let header = pkt.encode();
        // The payload rides inside the header bytes; only IP overhead on top.
        let size = header.len() as u32 + IP_OVERHEAD;
        out.send_new(self.flow, self.receiver_node, size, header);
        if let Some(cc) = self.cc.as_mut() {
            cc.on_send(out.now, size);
        }
        self.tracer.emit(
            out.now.as_nanos(),
            TraceEventKind::PktSent {
                kind: PktKind::Data,
                seq,
                bytes: size,
                retx: is_retx,
            },
        );
        self.probe.update(|d| {
            d.tx_data_pkts += 1;
            if is_retx {
                d.tx_retransmissions += 1;
            }
        });
    }

    /// Stream-mode transmission: retransmit retained chunks first, then
    /// packetise new bytes from the send buffer.
    fn send_one_stream(&mut self, out: &mut Outbox) {
        while let Some(seq) = self.sb.next_lost() {
            let retx_count = self.sb.retx_count(seq);
            let decision = self.policy.on_loss(seq, out.now, retx_count);
            if decision == qtp_sack::LossDecision::Retransmit {
                if let Some(chunk) = self.chunks.get(&seq).cloned() {
                    self.sb.register_retransmit(seq, out.now);
                    self.send_stream_data(out, seq, &chunk, true);
                    return;
                }
            }
            self.sb.abandon(seq);
            self.chunks.remove(&seq);
            self.probe.update(|d| d.tx_abandoned += 1);
            self.tracer
                .emit(out.now.as_nanos(), TraceEventKind::PktExpired { seq });
        }
        let max = (self.cfg.s as usize).min(MAX_STREAM_PAYLOAD);
        let Some((bytes, ttl_micros)) = self.stream.as_mut().unwrap().next_chunk(max) else {
            return;
        };
        let seq = self.sb.register_send(out.now);
        self.sent_new += 1;
        let reliability = self.chosen.map(|c| c.reliability);
        if matches!(reliability, Some(ReliabilityMode::PartialTtl(_))) {
            self.policy
                .register_adu(SeqRange::new(seq, seq + 1), out.now);
        }
        let chunk = StreamChunk {
            bytes,
            adu_ts: out.now,
            ttl_micros,
        };
        self.send_stream_data(out, seq, &chunk, false);
        if reliability.map(|r| r.retransmits()).unwrap_or(false) {
            self.chunks.insert(seq, chunk);
        }
    }

    /// Transmit one packet if anything is eligible: retransmissions first
    /// (policy permitting), then new data.
    fn send_one(&mut self, out: &mut Outbox) {
        if self.stream.is_some() {
            self.send_one_stream(out);
            return;
        }
        self.drop_stale_backlog(out.now);
        // Retransmissions have priority under reliable modes.
        while let Some(seq) = self.sb.next_lost() {
            let retx_count = self.sb.retx_count(seq);
            let decision = self.policy.on_loss(seq, out.now, retx_count);
            if decision == qtp_sack::LossDecision::Retransmit {
                let adu_ts = self.adu_ts.get(&seq).copied().unwrap_or(out.now);
                self.sb.register_retransmit(seq, out.now);
                self.send_data(out, seq, adu_ts, true);
                return;
            }
            // Abandoned: drop from the retransmission queue and keep going.
            self.sb.abandon(seq);
            self.probe.update(|d| d.tx_abandoned += 1);
            self.tracer
                .emit(out.now.as_nanos(), TraceEventKind::PktExpired { seq });
        }
        if self.app_has_data() {
            let submit = self.next_submit_ts(out.now);
            let seq = self.sb.register_send(out.now);
            self.sent_new += 1;
            let reliability = self.chosen.map(|c| c.reliability);
            if matches!(reliability, Some(ReliabilityMode::PartialTtl(_))) {
                self.policy
                    .register_adu(SeqRange::new(seq, seq + 1), submit);
            }
            if reliability.map(|r| r.retransmits()).unwrap_or(false) {
                self.adu_ts.insert(seq, submit);
            }
            self.send_data(out, seq, submit, false);
        }
    }

    /// Emit a FWD if the policy abandoned data the receiver is waiting for.
    fn maybe_send_forward(&mut self, out: &mut Outbox) {
        let Some(fp) = self.policy.forward_point(self.sb.cum_ack()) else {
            return;
        };
        let rtt = self
            .cc
            .as_ref()
            .and_then(|cc| cc.rtt())
            .unwrap_or(Duration::from_millis(100));
        if out.now.saturating_since(self.last_fwd) < rtt {
            return;
        }
        self.last_fwd = out.now;
        let pkt = QtpPacket::Forward { new_cum: fp };
        let size = pkt.wire_size();
        out.send_new(self.flow, self.receiver_node, size, pkt.encode());
        self.tracer.emit(
            out.now.as_nanos(),
            TraceEventKind::PktSent {
                kind: PktKind::Forward,
                seq: fp,
                bytes: size,
                retx: false,
            },
        );
    }

    fn on_pace(&mut self, out: &mut Outbox) {
        if self.state != State::Running || self.closed {
            return; // closed: let the timer lapse without re-arming
        }
        self.check_tail_loss(out.now);
        // Window-based controllers bound unacknowledged bytes in flight;
        // when the window is full the pace timer keeps ticking but no
        // packet leaves. Rate-based controllers return no limit, so their
        // scheduling is untouched.
        let window_open = match self.cc.as_ref().and_then(|cc| cc.cwnd_limit()) {
            Some(limit) => self.sb.in_flight() * u64::from(self.cfg.s) < limit,
            None => true,
        };
        if window_open {
            self.send_one(out);
        }
        self.maybe_send_forward(out);
        self.maybe_send_fin(out);
        if self.closed {
            return;
        }
        let interval = self.cc.as_ref().unwrap().send_interval();
        // Clamp pathological intervals so the event loop stays healthy.
        let interval = interval.clamp(Duration::from_micros(10), Duration::from_secs(2));
        self.arm(out, TK_PACE, out.now + interval);
    }

    // ---- wire-level close ---------------------------------------------

    /// Drained and ready to FIN: close was requested (via `Session::close`
    /// or `SendStream::finish`), every byte has been packetised, and — under
    /// retransmitting modes — every packet acknowledged or abandoned.
    fn fin_ready(&self) -> bool {
        let requested =
            self.close_requested || self.stream.as_ref().map(|s| s.fin_ready()).unwrap_or(false);
        if !requested {
            return false;
        }
        if self.app_has_data() || self.sb.next_lost().is_some() {
            return false;
        }
        let retransmits = self
            .chosen
            .map(|c| c.reliability.retransmits())
            .unwrap_or(false);
        !retransmits || self.sb.all_acked()
    }

    /// (Re)send FIN from the pace cadence with an RTO-style backoff; after
    /// [`FIN_MAX_RETRIES`] unanswered copies, close unilaterally.
    fn maybe_send_fin(&mut self, out: &mut Outbox) {
        if self.fin_acked || self.closed || !self.fin_ready() {
            return;
        }
        let rtt = self
            .cc
            .as_ref()
            .and_then(|cc| cc.rtt())
            .unwrap_or(Duration::from_millis(100));
        let rto = (rtt * 2).max(Duration::from_millis(50));
        let due = match self.fin_sent_at {
            None => true,
            Some(t) => out.now.saturating_since(t) >= rto,
        };
        if !due {
            return;
        }
        if self.fin_retries >= FIN_MAX_RETRIES {
            self.closed = true;
            self.tracer
                .emit(out.now.as_nanos(), TraceEventKind::State(ConnState::Closed));
            return;
        }
        self.fin_retries += 1;
        self.fin_sent_at = Some(out.now);
        let final_seq = self.sb.next_seq();
        let pkt = QtpPacket::Fin { final_seq };
        let size = pkt.wire_size();
        out.send_new(self.flow, self.receiver_node, size, pkt.encode());
        self.tracer.emit(
            out.now.as_nanos(),
            TraceEventKind::PktSent {
                kind: PktKind::Fin,
                seq: final_seq,
                bytes: size,
                retx: false,
            },
        );
    }

    fn on_finack(&mut self, now_nanos: u64) {
        if self.fin_sent_at.is_some() {
            self.fin_acked = true;
            self.closed = true;
            self.tracer
                .emit(now_nanos, TraceEventKind::State(ConnState::Closed));
        }
    }

    /// Tail-loss fallback: if the oldest outstanding packet has seen no
    /// progress for several RTTs, presume everything unsacked lost so the
    /// reliability machinery can act (SACK cannot report tail losses).
    fn check_tail_loss(&mut self, now: SimTime) {
        let retransmits = self
            .chosen
            .map(|c| c.reliability.retransmits())
            .unwrap_or(false);
        if !retransmits || self.sb.all_acked() {
            return;
        }
        let rtt = self
            .cc
            .as_ref()
            .and_then(|cc| cc.rtt())
            .unwrap_or(Duration::from_millis(100));
        let timeout = (rtt * 4).max(Duration::from_millis(500));
        if let Some(oldest) = self.sb.oldest_outstanding_send_time() {
            if now.saturating_since(oldest) > timeout {
                let range = SeqRange::new(self.sb.cum_ack(), self.sb.next_seq());
                let _ = self.sb.force_mark_lost(range);
            }
        }
    }

    // ---- feedback -----------------------------------------------------

    fn on_feedback_pkt(&mut self, out: &mut Outbox, fb: FeedbackFields<'_>) {
        let FeedbackFields {
            ts_echo_nanos,
            t_delay_micros,
            x_recv,
            p_ppb,
            cum_ack,
            blocks,
        } = fb;
        if self.state != State::Running || self.closed {
            return;
        }
        let prev_cum = self.sb.cum_ack();
        let digest = self.sb.on_feedback(cum_ack, blocks);
        if self.sb.cum_ack() > prev_cum {
            self.policy.prune(self.sb.cum_ack());
            self.adu_ts = self.adu_ts.split_off(&self.sb.cum_ack());
            self.chunks = self.chunks.split_off(&self.sb.cum_ack());
        }
        self.last_x_recv = x_recv as f64;

        // Reliability: route newly-declared losses through the policy.
        if !digest.newly_lost.is_empty() {
            self.tracer.emit(
                out.now.as_nanos(),
                TraceEventKind::LossEvent {
                    pkts: digest.newly_lost.len() as u32,
                },
            );
            let retransmits = self
                .chosen
                .map(|c| c.reliability.retransmits())
                .unwrap_or(false);
            if !retransmits {
                // Nothing will be retransmitted: abandon immediately so the
                // receiver can be moved past the holes.
                for &(seq, _) in &digest.newly_lost {
                    let _ = self.policy.on_loss(seq, out.now, 0);
                    self.sb.abandon(seq);
                }
            }
        }

        // The composition seam: where does p come from?
        let chosen = self.chosen.expect("running implies negotiated");
        let p = match chosen.feedback {
            FeedbackMode::ReceiverLoss => p_ppb.map(ppb_to_p).unwrap_or(0.0),
            FeedbackMode::SenderLoss => {
                let est = self
                    .estimator
                    .as_mut()
                    .expect("SenderLoss mode implies estimator");
                let rtt = self
                    .cc
                    .as_ref()
                    .and_then(|cc| cc.rtt())
                    .unwrap_or(Duration::from_millis(100));
                est.on_losses(&digest.newly_lost, rtt, x_recv as f64);
                est.loss_event_rate(self.sb.highest_seen())
            }
        };

        let report = FeedbackReport {
            now: out.now,
            ts_echo: SimTime::from_nanos(ts_echo_nanos),
            t_delay: Duration::from_micros(t_delay_micros as u64),
            x_recv: x_recv as f64,
            p,
            newly_acked_bytes: (self.sb.cum_ack() - prev_cum) * self.cfg.s as u64,
            newly_lost_pkts: digest.newly_lost.len() as u32,
        };
        let cc = self.cc.as_mut().unwrap();
        cc.on_feedback(&report);
        let rate = cc.allowed_rate();
        let nofb = cc.nofeedback_deadline();
        let rtt_s = cc.rtt().map(|r| r.as_secs_f64()).unwrap_or(0.0);
        self.arm(out, TK_NOFB, nofb);
        let (cc_ops, est_ops, sb_ops) = (
            self.cc.as_ref().unwrap().ops(),
            self.estimator.as_ref().map(|e| e.total_ops()).unwrap_or(0),
            self.sb.meter.total(),
        );
        let now = out.now;
        self.tracer.emit(
            now.as_nanos(),
            TraceEventKind::RateUpdate {
                rate_bps: (rate * 8.0) as u64,
                p_ppm: ((p * 1e6) as u32).min(1_000_000),
                rtt_us: (rtt_s * 1e6) as u64,
            },
        );
        self.probe.update(|d| {
            d.rate_trace.push((now, rate));
            d.p_trace.push((now, p));
            d.rtt_estimate_s = rtt_s;
            d.tx_ops = cc_ops + est_ops + sb_ops;
        });
        self.emit_cc_state(now);
        // Feedback may unblock the window (e.g. new losses to retransmit).
        self.maybe_send_forward(out);
    }

    /// Surface the typed controller snapshot for the window/model
    /// controllers. The TFRC-family states emit nothing extra here, so
    /// traces of pre-existing runs stay frozen.
    fn emit_cc_state(&mut self, now: SimTime) {
        let Some(state) = self.cc.as_ref().map(|cc| cc.state()) else {
            return;
        };
        match state {
            CcState::RateBased { .. } | CcState::FixedRate { .. } => {}
            CcState::Cubic {
                cwnd_bytes,
                w_max_bytes,
                tcp_friendly,
            } => self.tracer.emit(
                now.as_nanos(),
                TraceEventKind::CubicState {
                    cwnd_bytes,
                    w_max_bytes,
                    tcp_friendly,
                },
            ),
            CcState::BbrLite {
                phase,
                btlbw_bps,
                min_rtt_us,
            } => {
                let code = phase.code();
                if self.last_cc_phase.is_some() && self.last_cc_phase != Some(code) {
                    self.tracer.emit(
                        now.as_nanos(),
                        TraceEventKind::CcPhaseChange {
                            phase: code,
                            at_us: now.as_nanos() / 1_000,
                        },
                    );
                }
                self.last_cc_phase = Some(code);
                self.tracer.emit(
                    now.as_nanos(),
                    TraceEventKind::BbrState {
                        phase: code,
                        btlbw_bps,
                        min_rtt_us,
                    },
                );
            }
        }
    }

    fn on_nofb(&mut self, out: &mut Outbox) {
        if self.closed {
            return;
        }
        let Some(cc) = self.cc.as_mut() else { return };
        if out.now >= cc.nofeedback_deadline() {
            cc.on_nofeedback_timer(out.now);
        }
        let next = self.cc.as_ref().unwrap().nofeedback_deadline();
        self.arm(out, TK_NOFB, next);
    }
}

/// Borrowed fields of a decoded `QtpPacket::Feedback`, grouped so the
/// handler takes one argument per protocol message rather than eight.
struct FeedbackFields<'a> {
    ts_echo_nanos: u64,
    t_delay_micros: u32,
    x_recv: u64,
    p_ppb: Option<u32>,
    cum_ack: u64,
    blocks: &'a [SeqRange],
}

impl Endpoint for QtpSender {
    fn on_start(&mut self, out: &mut Outbox) {
        self.tracer.emit(
            out.now.as_nanos(),
            TraceEventKind::State(ConnState::Started),
        );
        self.send_syn(out);
    }

    fn handle_datagram(&mut self, out: &mut Outbox, wire_size: u32, header: &[u8]) {
        let Ok(decoded) = QtpPacket::decode(header) else {
            return;
        };
        match decoded {
            QtpPacket::SynAck {
                ts_echo_nanos,
                chosen,
            } => {
                self.tracer.emit(
                    out.now.as_nanos(),
                    TraceEventKind::PktRecvd {
                        kind: PktKind::SynAck,
                        seq: 0,
                        bytes: wire_size,
                    },
                );
                self.on_synack(out, ts_echo_nanos, chosen)
            }
            QtpPacket::Feedback {
                ts_echo_nanos,
                t_delay_micros,
                x_recv,
                p_ppb,
                cum_ack,
                blocks,
            } => {
                self.tracer.emit(
                    out.now.as_nanos(),
                    TraceEventKind::PktRecvd {
                        kind: PktKind::Feedback,
                        seq: cum_ack,
                        bytes: wire_size,
                    },
                );
                self.on_feedback_pkt(
                    out,
                    FeedbackFields {
                        ts_echo_nanos,
                        t_delay_micros,
                        x_recv,
                        p_ppb,
                        cum_ack,
                        blocks: &blocks,
                    },
                )
            }
            QtpPacket::FinAck { final_seq } => {
                self.tracer.emit(
                    out.now.as_nanos(),
                    TraceEventKind::PktRecvd {
                        kind: PktKind::FinAck,
                        seq: final_seq,
                        bytes: wire_size,
                    },
                );
                self.on_finack(out.now.as_nanos())
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, out: &mut Outbox, token: u64) {
        match self.gens.live(token) {
            Some(kind) => {
                self.tracer.emit(
                    out.now.as_nanos(),
                    TraceEventKind::TimerFired { kind: kind as u8 },
                );
                match kind {
                    TK_SYN if self.state == State::AwaitSynAck => self.send_syn(out),
                    TK_SYN => {}
                    TK_PACE => self.on_pace(out),
                    TK_NOFB => self.on_nofb(out),
                    TK_APP => self.on_app_tick(out),
                    _ => {}
                }
            }
            None => self.tracer.emit(
                out.now.as_nanos(),
                TraceEventKind::TimerCancelled {
                    kind: (token & 3) as u8,
                },
            ),
        }
    }
}
