//! # qtp-core — the versatile transport protocol
//!
//! Reproduction of the system proposed in *"Towards a Versatile Transport
//! Protocol"* (Jourjon, Lochin, Sénac — CoNEXT 2006): a reconfigurable
//! transport built by **composing and specialising** TFRC congestion
//! control (RFC 3448) and selective acknowledgments (RFC 2018), with three
//! negotiable service axes:
//!
//! 1. **reliability** — none / full / partial (TTL or retransmission
//!    budget), enforced at the sender with `FWD` fast-forward messages;
//! 2. **receiver processing** — standard receiver-side loss estimation, or
//!    the **QTPlight** sender-side variant for resource-limited receivers;
//! 3. **QoS awareness** — plain TFRC or **gTFRC** (`X = max(g, X_tfrc)`)
//!    for DiffServ Assured Forwarding networks.
//!
//! The two named instances are presets over one endpoint implementation:
//!
//! | instance   | cc        | reliability | feedback     |
//! |------------|-----------|-------------|--------------|
//! | `QTPAF`    | gTFRC(g)  | Full        | ReceiverLoss |
//! | `QTPlight` | TFRC      | None/partial| SenderLoss   |
//!
//! See [`session`] for the application-facing API (fluent [`Profile`]s,
//! poll-style [`Session`]s, the backend seam), [`caps`] for negotiation,
//! [`wire`] for the byte-level formats, and [`estimator`] for the
//! sender-side loss estimation that makes QTPlight possible.

pub mod adapter;
mod bufext;
pub mod caps;
pub mod cc;
pub mod driver;
pub mod estimator;
pub mod instances;
pub mod probe;
pub mod receiver;
pub mod sender;
pub mod session;
pub mod stream;
pub mod wire;

pub use adapter::{SimAgent, SimHost};
pub use caps::{CapabilitySet, CapsError, CcKind, FeedbackMode, ServerPolicy};
pub use cc::controller_for;
#[allow(deprecated)]
pub use cc::CcMachine;
pub use driver::{Command, Endpoint, Outbox, TimerGens, Transmit};
pub use estimator::SenderLossEstimator;
pub use instances::QtpHandles;
#[allow(deprecated)]
pub use instances::{
    attach_qtp, cbr_app, qtp_af_sender, qtp_light_partial_sender, qtp_light_sender,
    qtp_standard_sender,
};
pub use probe::{Probe, ProbeData};
pub use receiver::{QtpReceiver, QtpReceiverConfig};
pub use sender::{AppModel, QtpSender, QtpSenderConfig};
pub use session::{
    attach_pair, attach_pairs, Backend, ConnectionOutcome, ConnectionPlan, PairHandles, Profile,
    ProfileBuilder, ProfileError, Reliability, Session, SessionEvent, SessionEvents, SimBackend,
    SimTopology,
};
pub use stream::{RecvStream, SendStream, StreamConfig, StreamError};
pub use wire::{QtpPacket, WireError};
