//! The backend-neutral application API: fluent service profiles and
//! poll-style connection sessions.
//!
//! The paper's thesis is that applications *negotiate* a transport service
//! per connection from three orthogonal axes (reliability, receiver
//! processing, QoS awareness). This module is where that idea meets the
//! programmer:
//!
//! * [`Profile`] — a validated service profile, built fluently
//!   (`Profile::new().reliability(..).feedback(..).cc(..).build()?`) or
//!   from the named paper presets ([`Profile::qtp_af`],
//!   [`Profile::qtp_light`]); lossless to/from the [`CapabilitySet`] that
//!   travels in the handshake.
//! * [`ConnectionPlan`] — one connection's worth of application intent:
//!   the offered profile, the traffic model, the receiver's negotiation
//!   policy. Plans are backend-neutral descriptions; every backend runs
//!   the same plan unchanged.
//! * [`Session`] — a sans-io connection object in the tradition of
//!   quinn-proto: feed it datagrams ([`Session::handle_input`]) and time
//!   ([`Session::on_timeout`]), poll it for datagrams to send
//!   ([`Session::poll_transmit`]), the next wakeup
//!   ([`Session::poll_timeout`]) and typed events
//!   ([`Session::poll_event`]: `Connected`, `Delivered`, `TtlExpired`,
//!   `Rejected`, `Closed`). A `Session` also implements the lower-level
//!   [`Endpoint`] seam, so every existing driver (the simulator's
//!   [`SimAgent`](crate::adapter::SimAgent), `qtp-io`'s `UdpDriver` and
//!   `MuxDriver`) mounts it directly.
//! * [`Backend`] — the run-a-scenario seam: hand any backend a slice of
//!   plans and get per-connection [`ConnectionOutcome`]s back.
//!   [`SimBackend`] (here) drives plans through the deterministic
//!   simulator; `qtp_io::backend::{UdpBackend, MuxBackend}` drive the
//!   *same plans* over real UDP sockets, single-socket-per-connection or
//!   multiplexed.
//!
//! QUIC implementations converged on exactly this shape — one sans-io
//! connection object, many I/O strategies — and it is what lets a single
//! program here run unchanged on the simulator, the blocking UDP driver
//! and the multi-flow mux.

use qtp_metrics::trace::{TraceEventKind, TraceRegistry, Tracer};
use qtp_sack::ReliabilityMode;
use qtp_simnet::packet::{FlowId, NodeId};
use qtp_simnet::prelude::*;
use qtp_simnet::sim::Simulator;
use qtp_simnet::topology::{Dumbbell, DumbbellConfig};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::rc::Rc;
use std::time::Duration;

use crate::adapter::{SimAgent, SimHost};
use crate::caps::{CapabilitySet, CapsError, CcKind, FeedbackMode, ServerPolicy};
use crate::driver::{Command, Endpoint, Outbox, Transmit};
use crate::probe::{Probe, ProbeData};
use crate::receiver::{QtpReceiver, QtpReceiverConfig};
use crate::sender::{AppModel, QtpSender, QtpSenderConfig};
use crate::stream::{RecvStream, SendStream, StreamConfig};
use crate::wire::{self, QtpPacket, WireError};

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

/// The reliability axis, in application terms (axis 1 of the paper).
///
/// This is the fluent-API face of [`ReliabilityMode`]; the two convert
/// losslessly in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reliability {
    /// No retransmission at all (pure streaming).
    None,
    /// Full reliability: every byte is retransmitted until acknowledged.
    Full,
    /// Partial reliability: retransmit only data still younger than the
    /// TTL (stale ADUs are abandoned with a `FWD`).
    Ttl(Duration),
    /// Partial reliability: at most this many retransmissions per packet.
    Budget(u32),
}

impl From<Reliability> for ReliabilityMode {
    fn from(r: Reliability) -> ReliabilityMode {
        match r {
            Reliability::None => ReliabilityMode::None,
            Reliability::Full => ReliabilityMode::Full,
            Reliability::Ttl(d) => ReliabilityMode::PartialTtl(d),
            Reliability::Budget(n) => ReliabilityMode::PartialRetx(n),
        }
    }
}

impl From<ReliabilityMode> for Reliability {
    fn from(m: ReliabilityMode) -> Reliability {
        match m {
            ReliabilityMode::None => Reliability::None,
            ReliabilityMode::Full => Reliability::Full,
            ReliabilityMode::PartialTtl(d) => Reliability::Ttl(d),
            ReliabilityMode::PartialRetx(n) => Reliability::Budget(n),
        }
    }
}

/// Why a profile failed validation. Returned by [`ProfileBuilder::build`]
/// (and [`Profile::try_from`] on a [`CapabilitySet`]) instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileError {
    /// `Reliability::Ttl(0)`: every ADU would be stale before its first
    /// transmission. Use [`Reliability::None`] to opt out of reliability.
    ZeroTtl,
    /// `Reliability::Budget(0)`: a zero retransmission budget is
    /// [`Reliability::None`] with extra bookkeeping — ask for what you
    /// mean.
    ZeroRetxBudget,
    /// `CcKind::Fixed` with a zero rate: the sender would never transmit.
    ZeroFixedRate,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::ZeroTtl => write!(f, "partial reliability with a zero TTL"),
            ProfileError::ZeroRetxBudget => {
                write!(f, "partial reliability with a zero retransmission budget")
            }
            ProfileError::ZeroFixedRate => write!(f, "fixed-rate congestion control at 0 bit/s"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// A validated service profile over the paper's three axes.
///
/// Build one fluently — [`Profile::new`] returns a [`ProfileBuilder`] —
/// or use the named paper instances:
///
/// ```
/// use qtp_core::session::{Profile, Reliability};
/// use qtp_core::{CcKind, FeedbackMode};
/// use qtp_simnet::time::Rate;
/// use std::time::Duration;
///
/// // The QTPAF preset…
/// let af = Profile::qtp_af(Rate::from_mbps(2));
/// // …and an à-la-carte composition over the same axes.
/// let custom = Profile::new()
///     .reliability(Reliability::Ttl(Duration::from_millis(200)))
///     .feedback(FeedbackMode::SenderLoss)
///     .cc(CcKind::Tfrc)
///     .build()
///     .unwrap();
/// assert_ne!(af.caps(), custom.caps());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    caps: CapabilitySet,
}

impl Profile {
    /// Start a fluent profile description. Defaults to the standard-TFRC
    /// baseline (no reliability, receiver-side estimation, plain TFRC).
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> ProfileBuilder {
        ProfileBuilder {
            reliability: Reliability::None,
            feedback: FeedbackMode::ReceiverLoss,
            cc: CcKind::Tfrc,
        }
    }

    /// The **QTPAF** instance (paper §4): gTFRC with guaranteed floor `g`,
    /// full reliability, receiver-side loss estimation.
    pub fn qtp_af(g: Rate) -> Profile {
        Profile {
            caps: CapabilitySet::qtp_af(g),
        }
    }

    /// The **QTPlight** instance (paper §3): sender-side loss estimation,
    /// no retransmission, plain TFRC.
    pub fn qtp_light() -> Profile {
        Profile {
            caps: CapabilitySet::qtp_light(),
        }
    }

    /// QTPlight with TTL-bounded partial reliability (the selective
    /// retransmission by-product paper §3 highlights). A zero TTL is
    /// rejected — see [`ProfileError::ZeroTtl`].
    pub fn qtp_light_partial(ttl: Duration) -> Result<Profile, ProfileError> {
        Profile::new()
            .reliability(Reliability::Ttl(ttl))
            .feedback(FeedbackMode::SenderLoss)
            .cc(CcKind::Tfrc)
            .build()
    }

    /// The standard TFRC baseline both named instances are compared
    /// against.
    pub fn tfrc() -> Profile {
        Profile {
            caps: CapabilitySet::tfrc_standard(),
        }
    }

    /// CUBIC (RFC 8312) with full reliability and receiver-side loss
    /// estimation — the window-based point of comparison for the
    /// controller races (C-group experiments).
    pub fn cubic() -> Profile {
        Profile {
            caps: CapabilitySet {
                reliability: ReliabilityMode::Full,
                feedback: FeedbackMode::ReceiverLoss,
                cc: CcKind::Cubic,
            },
        }
    }

    /// BBR-lite (deterministic model-based controller) with full
    /// reliability and receiver-side loss estimation.
    pub fn bbr_lite() -> Profile {
        Profile {
            caps: CapabilitySet {
                reliability: ReliabilityMode::Full,
                feedback: FeedbackMode::ReceiverLoss,
                cc: CcKind::BbrLite,
            },
        }
    }

    /// The wire-level capability set this profile offers in the handshake
    /// (lossless; [`Profile::try_from`] converts back).
    pub fn caps(&self) -> CapabilitySet {
        self.caps
    }

    /// The reliability axis.
    pub fn reliability(&self) -> Reliability {
        self.caps.reliability.into()
    }

    /// The receiver-processing axis.
    pub fn feedback(&self) -> FeedbackMode {
        self.caps.feedback
    }

    /// The QoS-awareness axis.
    pub fn cc(&self) -> CcKind {
        self.caps.cc
    }
}

impl From<Profile> for CapabilitySet {
    fn from(p: Profile) -> CapabilitySet {
        p.caps
    }
}

impl TryFrom<CapabilitySet> for Profile {
    type Error = ProfileError;

    /// Validate a wire-level capability set into a profile. Lossless for
    /// every set a [`ProfileBuilder`] accepts.
    fn try_from(caps: CapabilitySet) -> Result<Profile, ProfileError> {
        Profile::new()
            .reliability(caps.reliability.into())
            .feedback(caps.feedback)
            .cc(caps.cc)
            .build()
    }
}

/// Fluent builder returned by [`Profile::new`]; validation happens once,
/// in [`ProfileBuilder::build`].
#[derive(Debug, Clone, Copy)]
pub struct ProfileBuilder {
    reliability: Reliability,
    feedback: FeedbackMode,
    cc: CcKind,
}

impl ProfileBuilder {
    /// Set the reliability axis.
    pub fn reliability(mut self, r: Reliability) -> Self {
        self.reliability = r;
        self
    }

    /// Set the receiver-processing axis.
    pub fn feedback(mut self, f: FeedbackMode) -> Self {
        self.feedback = f;
        self
    }

    /// Set the QoS-awareness axis.
    pub fn cc(mut self, cc: CcKind) -> Self {
        self.cc = cc;
        self
    }

    /// Validate the composition.
    pub fn build(self) -> Result<Profile, ProfileError> {
        match self.reliability {
            Reliability::Ttl(d) if d.is_zero() => return Err(ProfileError::ZeroTtl),
            Reliability::Budget(0) => return Err(ProfileError::ZeroRetxBudget),
            _ => {}
        }
        if let CcKind::Fixed { rate } = self.cc {
            if rate.bps() == 0 {
                return Err(ProfileError::ZeroFixedRate);
            }
        }
        Ok(Profile {
            caps: CapabilitySet {
                reliability: self.reliability.into(),
                feedback: self.feedback,
                cc: self.cc,
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Connection plans
// ---------------------------------------------------------------------------

/// One connection's worth of application intent, backend-neutral: what
/// service to offer, what traffic to generate, and how the receiving side
/// negotiates. The same plan runs unchanged on every [`Backend`].
#[derive(Debug, Clone)]
pub struct ConnectionPlan {
    /// Display / flow-registration label (backends generate one if empty).
    pub label: String,
    /// Service profile the sender offers.
    pub profile: Profile,
    /// Traffic model on top of the sender.
    pub app: AppModel,
    /// Payload bytes per data packet.
    pub payload: u32,
    /// Receiver-side negotiation policy.
    pub policy: ServerPolicy,
    /// Selfish-receiver attack factor (1.0 = honest).
    pub selfish_factor: f64,
    /// **D1 ablation** (experiments only): disable RTT-window loss-event
    /// grouping in the sender-side estimator.
    pub ablate_ungrouped_losses: bool,
    /// Application data plane: when set, the connection carries stream
    /// messages (see [`SendStream`]/[`RecvStream`]) instead of `app`'s
    /// synthetic traffic.
    pub stream: Option<StreamConfig>,
}

impl ConnectionPlan {
    /// A greedy connection offering `profile`, with default payload size
    /// and a permissive receiver.
    pub fn new(profile: Profile) -> Self {
        ConnectionPlan {
            label: String::new(),
            profile,
            app: AppModel::Greedy,
            payload: 1000,
            policy: ServerPolicy::default(),
            selfish_factor: 1.0,
            ablate_ungrouped_losses: false,
            stream: None,
        }
    }

    /// Set the label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Set the traffic model.
    pub fn app(mut self, app: AppModel) -> Self {
        self.app = app;
        self
    }

    /// Shorthand for a finite transfer of `packets` packets.
    pub fn finite(self, packets: u64) -> Self {
        self.app(AppModel::Finite { packets })
    }

    /// Set the payload bytes per packet.
    pub fn payload(mut self, payload: u32) -> Self {
        self.payload = payload;
        self
    }

    /// Set the receiver's negotiation policy.
    pub fn policy(mut self, policy: ServerPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the selfish-receiver factor (experiments).
    pub fn selfish_factor(mut self, k: f64) -> Self {
        self.selfish_factor = k;
        self
    }

    /// Enable the D1 ungrouped-losses ablation (experiments).
    pub fn ablate_ungrouped_losses(mut self, on: bool) -> Self {
        self.ablate_ungrouped_losses = on;
        self
    }

    /// Attach the application stream data plane: traffic comes from
    /// [`SendStream::send`] instead of the synthetic app model, and the
    /// receiving side surfaces messages through a [`RecvStream`].
    pub fn stream(mut self, cfg: StreamConfig) -> Self {
        self.stream = Some(cfg);
        self
    }

    /// Lower the plan into the sender endpoint's configuration.
    pub fn sender_config(&self) -> QtpSenderConfig {
        let mut cfg = QtpSenderConfig::new(self.profile.caps());
        cfg.s = self.payload;
        cfg.app = self.app.clone();
        cfg.ablate_ungrouped_losses = self.ablate_ungrouped_losses;
        cfg.stream = self.stream.clone();
        cfg
    }

    /// Lower the plan into the receiver endpoint's configuration.
    pub fn receiver_config(&self) -> QtpReceiverConfig {
        QtpReceiverConfig {
            policy: self.policy.clone(),
            selfish_factor: self.selfish_factor,
            stream: self.stream.clone(),
        }
    }

    /// The reliability mode a backend should judge this plan by: the
    /// **negotiated** mode once the handshake completed (the receiver's
    /// policy may have downgraded the offer), the offer before. Every
    /// backend's completion rule goes through this one helper so sim and
    /// socket backends can never disagree on what "done" means.
    pub fn effective_reliability(&self, negotiated: Option<CapabilitySet>) -> ReliabilityMode {
        negotiated
            .map(|c| c.reliability)
            .unwrap_or(self.profile.caps().reliability)
    }

    /// Packets this plan's app model will generate, if finite (backends
    /// use this to decide when a connection has finished its job).
    pub fn finite_packets(&self) -> Option<u64> {
        match self.app {
            AppModel::Finite { packets } => Some(packets),
            _ => None,
        }
    }

    /// The plan's label, or a generated `conn{index:04}` when unset.
    pub fn display_label(&self, index: usize) -> String {
        if self.label.is_empty() {
            format!("conn{index:04}")
        } else {
            self.label.clone()
        }
    }
}

// ---------------------------------------------------------------------------
// Session events
// ---------------------------------------------------------------------------

/// A typed event observed on a [`Session`] — the application-facing view
/// of negotiation outcomes and delivery, with no reaching into probes.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// The handshake completed; this is the service the network granted.
    Connected {
        /// The negotiated capability set (the offer after policy
        /// intersection).
        negotiated: CapabilitySet,
    },
    /// Application payload became deliverable (receiver side).
    /// Consecutive deliveries coalesce into one event while it sits
    /// unpolled at the queue tail, so a long-running connection holds
    /// O(1) delivery events rather than one per ADU.
    Delivered {
        /// Bytes handed to the application since the last poll.
        bytes: u64,
    },
    /// Partial reliability abandoned stale data (sender side): `packets`
    /// ADUs aged past their TTL/budget and will never be (re)sent.
    /// Coalesces at the queue tail like `Delivered`.
    TtlExpired {
        /// Newly abandoned packets since the last poll.
        packets: u64,
    },
    /// A peer offered a capability set this implementation cannot decode;
    /// the datagram was dropped. Carries the offending wire code.
    /// Consecutive identical rejections (a peer retransmitting the same
    /// malformed SYN) coalesce into one event at the queue tail.
    Rejected {
        /// Which axis failed and with what wire code.
        error: CapsError,
    },
    /// Stream messages became available on the [`RecvStream`]
    /// (receiver side). Coalesces at the queue tail like `Delivered`.
    Readable {
        /// Complete messages surfaced since the last poll.
        messages: u64,
    },
    /// The bounded stream send buffer has space again after a
    /// [`StreamError`](crate::stream::StreamError)`::Full` rejection
    /// (sender side) — retry the send.
    Writable,
    /// The peer finished its stream: the close handshake's FIN was
    /// processed and every deliverable message has been surfaced
    /// (receiver side).
    Finished,
    /// The session closed. For a graceful [`Session::close`] this fires
    /// once the wire-level FIN / FIN-ACK handshake completes; for
    /// [`Session::abort`] it fires immediately.
    Closed,
}

/// Cloneable handle onto a session's event queue.
///
/// Sessions attached to the simulator are moved into it (like agents), so
/// observers keep one of these — the session-event analogue of [`Probe`].
#[derive(Debug, Default, Clone)]
pub struct SessionEvents {
    inner: Rc<RefCell<VecDeque<SessionEvent>>>,
}

impl SessionEvents {
    fn push(&self, ev: SessionEvent) {
        self.inner.borrow_mut().push_back(ev);
    }

    /// Record a delivery, coalescing with a `Delivered` event already at
    /// the queue tail (unbounded-growth guard for observers that only
    /// read events after the run — or never).
    fn push_delivered(&self, bytes: u64) {
        let mut q = self.inner.borrow_mut();
        if let Some(SessionEvent::Delivered { bytes: tail }) = q.back_mut() {
            *tail += bytes;
            return;
        }
        q.push_back(SessionEvent::Delivered { bytes });
    }

    /// Record TTL/budget expiry, coalescing at the queue tail like
    /// [`SessionEvents::push_delivered`] — a long-lived TTL-streaming
    /// session otherwise grows one event per expiry burst.
    fn push_ttl_expired(&self, packets: u64) {
        let mut q = self.inner.borrow_mut();
        if let Some(SessionEvent::TtlExpired { packets: tail }) = q.back_mut() {
            *tail += packets;
            return;
        }
        q.push_back(SessionEvent::TtlExpired { packets });
    }

    /// Record newly readable stream messages, coalescing at the queue
    /// tail like [`SessionEvents::push_delivered`].
    fn push_readable(&self, messages: u64) {
        let mut q = self.inner.borrow_mut();
        if let Some(SessionEvent::Readable { messages: tail }) = q.back_mut() {
            *tail += messages;
            return;
        }
        q.push_back(SessionEvent::Readable { messages });
    }

    /// Record a capability rejection; consecutive identical errors (a
    /// peer retransmitting one malformed SYN) collapse into one event.
    fn push_rejected(&self, error: CapsError) {
        let mut q = self.inner.borrow_mut();
        if q.back() == Some(&SessionEvent::Rejected { error }) {
            return;
        }
        q.push_back(SessionEvent::Rejected { error });
    }

    /// Pop the oldest pending event.
    pub fn poll(&self) -> Option<SessionEvent> {
        self.inner.borrow_mut().pop_front()
    }

    /// Drain every pending event.
    pub fn drain(&self) -> Vec<SessionEvent> {
        self.inner.borrow_mut().drain(..).collect()
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

enum Role {
    Sender(QtpSender),
    Receiver(QtpReceiver),
}

impl Endpoint for Role {
    fn on_start(&mut self, out: &mut Outbox) {
        match self {
            Role::Sender(s) => s.on_start(out),
            Role::Receiver(r) => r.on_start(out),
        }
    }

    fn handle_datagram(&mut self, out: &mut Outbox, wire_size: u32, header: &[u8]) {
        match self {
            Role::Sender(s) => s.handle_datagram(out, wire_size, header),
            Role::Receiver(r) => r.handle_datagram(out, wire_size, header),
        }
    }

    fn on_timer(&mut self, out: &mut Outbox, token: u64) {
        match self {
            Role::Sender(s) => s.on_timer(out, token),
            Role::Receiver(r) => r.on_timer(out, token),
        }
    }
}

/// A sans-io QTP connection endpoint with a poll-style surface.
///
/// One `Session` wraps one side of a connection (sender or receiver). Two
/// consumption styles exist, and every backend uses exactly one:
///
/// **Standalone (poll) style** — for hand-written event loops, quinn-proto
/// fashion. The session owns its timer queue:
///
/// ```text
/// session.start(now);
/// loop {
///     while let Some(t) = session.poll_transmit() { /* send t */ }
///     while let Some(ev) = session.poll_event() { /* observe */ }
///     // sleep until session.poll_timeout(), or a datagram arrives…
///     session.on_timeout(now);
///     session.handle_input(now, wire_size, &header);
/// }
/// ```
///
/// **Mounted style** — a `Session` implements [`Endpoint`], so the
/// simulator ([`SimAgent`](crate::adapter::SimAgent)), `qtp_io::UdpDriver`
/// and `qtp_io::MuxDriver` drive it like any endpoint. Commands pass
/// through to the driver unchanged and in order (which is what keeps
/// fixed-seed simulations byte-identical to the pre-session wiring); the
/// driver owns the timers, and [`Session::poll_timeout`] stays empty.
/// Events and accessors work identically in both styles.
pub struct Session {
    inner: Role,
    out: Outbox,
    started: bool,
    closed: bool,
    connected: bool,
    // Standalone-style surfaces (unused while mounted in a driver).
    transmits: VecDeque<Transmit>,
    timers: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    timer_seq: u64,
    delivered_bytes: u64,
    abandoned_seen: u64,
    probe: Probe,
    events: SessionEvents,
    /// Sender-side stream state, polled for `Writable` edges.
    send_shared: Option<Rc<RefCell<crate::stream::SendShared>>>,
    /// Receiver-side stream state, polled for `Readable` counts.
    recv_shared: Option<Rc<RefCell<crate::stream::RecvShared>>>,
    /// `Finished` has been emitted.
    finished_reported: bool,
    /// The endpoint's observability handle (stream edges are emitted here
    /// too, so a trace shows app-visible events alongside wire events).
    tracer: Tracer,
}

impl Session {
    /// A sending session for one connection: `data_flow` is the flow id
    /// its data travels on, `peer` the destination endpoint id (a node id
    /// under the simulator; real-socket drivers map every id onto the
    /// connected peer).
    pub fn sender(data_flow: FlowId, peer: NodeId, plan: &ConnectionPlan) -> Session {
        let probe = Probe::new();
        let sender = QtpSender::new(data_flow, peer, plan.sender_config(), probe.clone());
        let send_shared = sender.stream_shared();
        let tracer = sender.tracer();
        let mut s = Session::wrap(Role::Sender(sender)).with_probe(probe);
        s.send_shared = send_shared;
        s.tracer = tracer;
        s
    }

    /// A receiving session: data arrives on `data_flow`, feedback leaves
    /// on `fb_flow` toward `peer`.
    pub fn receiver(
        data_flow: FlowId,
        fb_flow: FlowId,
        peer: NodeId,
        plan: &ConnectionPlan,
    ) -> Session {
        let probe = Probe::new();
        let receiver = QtpReceiver::new(
            data_flow,
            fb_flow,
            peer,
            plan.receiver_config(),
            probe.clone(),
        );
        let recv_shared = receiver.stream_shared();
        let tracer = receiver.tracer();
        let mut s = Session::wrap(Role::Receiver(receiver)).with_probe(probe);
        s.recv_shared = recv_shared;
        s.tracer = tracer;
        s
    }

    /// The sending half of the stream data plane (plans built with
    /// [`ConnectionPlan::stream`], sender side). Cheap to clone and kept
    /// valid after the session moves into a simulator or driver.
    pub fn send_stream(&self) -> Option<SendStream> {
        match &self.inner {
            Role::Sender(s) => s.send_stream(),
            Role::Receiver(_) => None,
        }
    }

    /// The receiving half of the stream data plane (plans built with
    /// [`ConnectionPlan::stream`], receiver side). Cheap to clone and kept
    /// valid after the session moves into a simulator or driver.
    pub fn recv_stream(&self) -> Option<RecvStream> {
        match &self.inner {
            Role::Receiver(r) => r.recv_stream(),
            Role::Sender(_) => None,
        }
    }

    fn wrap(inner: Role) -> Session {
        Session {
            inner,
            out: Outbox::new(),
            started: false,
            closed: false,
            connected: false,
            transmits: VecDeque::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            delivered_bytes: 0,
            abandoned_seen: 0,
            probe: Probe::new(),
            events: SessionEvents::default(),
            send_shared: None,
            recv_shared: None,
            finished_reported: false,
            tracer: Tracer::new(0),
        }
    }

    fn with_probe(mut self, probe: Probe) -> Session {
        self.probe = probe;
        self
    }

    // ---- poll-style driving -------------------------------------------

    /// Start the session (idempotent): a sender emits its SYN.
    pub fn start(&mut self, now: SimTime) {
        if self.started || self.closed {
            return;
        }
        self.started = true;
        self.out.now = now;
        self.inner.on_start(&mut self.out);
        self.pump(None);
    }

    /// An incoming datagram: `wire_size` is the accounted on-wire size,
    /// `header` the encoded transport header. Malformed capability offers
    /// surface as [`SessionEvent::Rejected`]; all other undecodable input
    /// is silently dropped (datagram networks promise nothing).
    pub fn handle_input(&mut self, now: SimTime, wire_size: u32, header: &[u8]) {
        // Close-handshake packets pass the gate: a closed receiver must
        // keep acknowledging retransmitted FINs so the peer can finish.
        if self.closed && !wire::is_close_handshake(header) {
            return;
        }
        self.out.now = now;
        self.detect_rejected(header);
        self.inner.handle_datagram(&mut self.out, wire_size, header);
        self.pump(None);
    }

    /// Fire every internally-armed timer due at `now`, in deadline order
    /// (ties by arming order). Standalone style only — while mounted in a
    /// driver the driver owns the timers.
    pub fn on_timeout(&mut self, now: SimTime) {
        while let Some(Reverse((at, _, _))) = self.timers.peek() {
            if *at > now {
                break;
            }
            let Reverse((_, _, token)) = self.timers.pop().expect("peeked entry");
            self.handle_timer(now, token);
        }
    }

    /// Deliver one raw timer token (drivers that schedule tokens natively;
    /// [`Session::on_timeout`] is the cooked variant). Stale generations
    /// are filtered by the endpoint itself.
    pub fn handle_timer(&mut self, now: SimTime, token: u64) {
        if self.closed {
            return;
        }
        self.out.now = now;
        self.inner.on_timer(&mut self.out, token);
        self.pump(None);
    }

    /// Deadline of the earliest internally-armed timer, if any: sleep no
    /// longer than this before calling [`Session::on_timeout`].
    pub fn poll_timeout(&self) -> Option<SimTime> {
        self.timers.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Next datagram to put on the wire, in emission order.
    pub fn poll_transmit(&mut self) -> Option<Transmit> {
        self.transmits.pop_front()
    }

    /// Next pending session event.
    pub fn poll_event(&mut self) -> Option<SessionEvent> {
        self.events.poll()
    }

    /// Close the session. A running sender drains, runs the wire-level
    /// FIN / FIN-ACK handshake, and emits [`SessionEvent::Closed`] once the
    /// peer acknowledged (or retries were exhausted); keep driving the
    /// session until then. A sender that never completed its handshake, and
    /// any receiver, closes locally like [`Session::abort`].
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        match &mut self.inner {
            Role::Sender(s) => {
                s.begin_close();
                if s.close_complete() {
                    self.finish_close();
                }
                // Otherwise `pump` observes close_complete() later and
                // finishes then.
            }
            Role::Receiver(_) => self.finish_close(),
        }
    }

    /// Close immediately and locally: no FIN goes out, further input and
    /// timers are ignored (except close-handshake packets, which still get
    /// acknowledged so the peer can finish), queued transmits still drain,
    /// and [`SessionEvent::Closed`] is emitted at once.
    pub fn abort(&mut self) {
        if !self.closed {
            self.finish_close();
        }
    }

    fn finish_close(&mut self) {
        self.closed = true;
        self.timers.clear();
        self.events.push(SessionEvent::Closed);
    }

    // ---- shared internals ---------------------------------------------

    fn detect_rejected(&mut self, header: &[u8]) {
        if wire::carries_capabilities(header) {
            if let Err(WireError::BadCapability(error)) = QtpPacket::decode(header) {
                self.events.push_rejected(error);
                self.tracer
                    .emit(self.out.now.as_nanos(), TraceEventKind::SoftError);
            }
        }
    }

    /// Drain the endpoint's commands. With `ext` (mounted style) they pass
    /// through to the driver's outbox unchanged and in order; without it
    /// (standalone style) they land in the session's own queues. Either
    /// way, session events are derived as a side effect.
    fn pump(&mut self, mut ext: Option<&mut Outbox>) {
        while let Some(cmd) = self.out.poll_cmd() {
            match cmd {
                Command::Transmit(t) => match ext.as_deref_mut() {
                    Some(o) => o.send_new(t.flow, t.dst, t.wire_size, t.header),
                    None => self.transmits.push_back(t),
                },
                Command::SetTimer { at, token } => match ext.as_deref_mut() {
                    Some(o) => o.set_timer_at(at, token),
                    None => {
                        self.timer_seq += 1;
                        self.timers.push(Reverse((at, self.timer_seq, token)));
                    }
                },
                Command::Deliver { flow, bytes } => {
                    self.delivered_bytes += bytes;
                    self.events.push_delivered(bytes);
                    if let Some(o) = ext.as_deref_mut() {
                        o.app_deliver(flow, bytes);
                    }
                }
            }
        }
        if !self.connected {
            if let Some(negotiated) = self.negotiated() {
                self.connected = true;
                self.events.push(SessionEvent::Connected { negotiated });
            }
        }
        let abandoned = self.probe.read(|d| d.tx_abandoned);
        if abandoned > self.abandoned_seen {
            self.events
                .push_ttl_expired(abandoned - self.abandoned_seen);
            self.abandoned_seen = abandoned;
        }
        // Stream data-plane edges.
        if let Some(sh) = &self.send_shared {
            if crate::stream::take_writable_edge(sh) {
                self.tracer
                    .emit(self.out.now.as_nanos(), TraceEventKind::StreamWritable);
                self.events.push(SessionEvent::Writable);
            }
        }
        if let Some(rh) = &self.recv_shared {
            let n = crate::stream::take_readable(rh);
            if n > 0 {
                self.tracer
                    .emit(self.out.now.as_nanos(), TraceEventKind::StreamReadable);
                self.events.push_readable(n);
            }
        }
        if !self.finished_reported {
            if let Role::Receiver(r) = &self.inner {
                if r.finished() {
                    self.finished_reported = true;
                    self.tracer
                        .emit(self.out.now.as_nanos(), TraceEventKind::StreamFin);
                    self.events.push(SessionEvent::Finished);
                }
            }
        }
        // Graceful close: the sender reports completion of the FIN
        // handshake; surface it as `Closed` and stop the timer surface.
        if !self.closed {
            if let Role::Sender(s) = &self.inner {
                if s.close_complete() {
                    self.finish_close();
                }
            }
        }
    }

    // ---- observation ---------------------------------------------------

    /// The negotiated capability set, once the handshake completed.
    pub fn negotiated(&self) -> Option<CapabilitySet> {
        match &self.inner {
            Role::Sender(s) => s.negotiated(),
            Role::Receiver(r) => r.negotiated(),
        }
    }

    /// Cloneable handle onto this session's event queue (survives the
    /// session being moved into a simulator or driver).
    pub fn events(&self) -> SessionEvents {
        self.events.clone()
    }

    /// The endpoint's measurement probe (processing costs, traces).
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// The endpoint's [`Tracer`]: per-connection counters always, plus
    /// event forwarding once a sink is attached (e.g. via
    /// [`TraceRegistry::register`]). Cheap to clone and kept valid after
    /// the session moves into a simulator or driver.
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Application bytes delivered by this session (receiver side).
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Soft errors absorbed by this session (malformed capability offers
    /// dropped on the floor). Reads the tracer's counters — the same
    /// figure a [`TraceRegistry`] snapshot reports.
    pub fn soft_errors(&self) -> u64 {
        self.tracer.counters().soft_errors
    }

    /// Whether [`Session::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Sender-side: has every packet handed to the network been
    /// acknowledged?
    pub fn all_acked(&self) -> bool {
        match &self.inner {
            Role::Sender(s) => s.all_acked(),
            Role::Receiver(_) => true,
        }
    }

    /// Sender-side: new (never-retransmitted) packets sent so far.
    pub fn sent_new(&self) -> u64 {
        match &self.inner {
            Role::Sender(s) => s.sent_new(),
            Role::Receiver(_) => 0,
        }
    }

    /// Receiver-side: packets delivered to the application so far.
    pub fn delivered_packets(&self) -> u64 {
        match &self.inner {
            Role::Receiver(r) => r.delivered_packets(),
            Role::Sender(_) => 0,
        }
    }

    /// Receiver-side: next expected in-order sequence.
    pub fn cum_ack(&self) -> u64 {
        match &self.inner {
            Role::Receiver(r) => r.cum_ack(),
            Role::Sender(_) => 0,
        }
    }
}

/// Mounted style: a `Session` is itself an [`Endpoint`], so every existing
/// driver hosts it. Commands pass through in emission order — a
/// `SimAgent<Session>` replays exactly like a `SimAgent<QtpSender>`.
impl Endpoint for Session {
    fn on_start(&mut self, out: &mut Outbox) {
        if self.started || self.closed {
            return;
        }
        self.started = true;
        self.out.now = out.now;
        self.inner.on_start(&mut self.out);
        self.pump(Some(out));
    }

    fn handle_datagram(&mut self, out: &mut Outbox, wire_size: u32, header: &[u8]) {
        if self.closed && !wire::is_close_handshake(header) {
            return;
        }
        self.out.now = out.now;
        self.detect_rejected(header);
        self.inner.handle_datagram(&mut self.out, wire_size, header);
        self.pump(Some(out));
    }

    fn on_timer(&mut self, out: &mut Outbox, token: u64) {
        if self.closed {
            return;
        }
        self.out.now = out.now;
        self.inner.on_timer(&mut self.out, token);
        self.pump(Some(out));
    }
}

// ---------------------------------------------------------------------------
// Simulator binding
// ---------------------------------------------------------------------------

/// Observation handles for one simulated connection attached with
/// [`attach_pair`] (the sessions themselves move into the simulator).
#[derive(Debug, Clone)]
pub struct PairHandles {
    /// Flow id of the data direction (throughput/goodput accounting).
    pub data_flow: FlowId,
    /// Flow id of the feedback direction.
    pub fb_flow: FlowId,
    /// Sender-side probe.
    pub tx: Probe,
    /// Receiver-side probe.
    pub rx: Probe,
    /// Sender-side session events.
    pub tx_events: SessionEvents,
    /// Receiver-side session events.
    pub rx_events: SessionEvents,
    /// Sending half of the stream data plane (plans with a stream config).
    pub tx_stream: Option<SendStream>,
    /// Receiving half of the stream data plane.
    pub rx_stream: Option<RecvStream>,
    /// Sender-side tracer (counters + event emission).
    pub tx_tracer: Tracer,
    /// Receiver-side tracer.
    pub rx_tracer: Tracer,
}

/// Attach one planned connection to a simulated topology: a sending
/// session at `sender_node`, a receiving session at `receiver_node`, two
/// registered flows (`<name>` data, `<name>-fb` feedback).
///
/// This is the session-layer successor of the deprecated
/// `attach_qtp`: same wiring, byte-identical fixed-seed behaviour, plus
/// typed events.
pub fn attach_pair(
    sim: &mut Simulator,
    sender_node: NodeId,
    receiver_node: NodeId,
    name: &str,
    plan: &ConnectionPlan,
) -> PairHandles {
    let data_flow = sim.register_flow(name);
    let fb_flow = sim.register_flow(&format!("{name}-fb"));
    let tx = Session::sender(data_flow, receiver_node, plan);
    let rx = Session::receiver(data_flow, fb_flow, sender_node, plan);
    let handles = PairHandles {
        data_flow,
        fb_flow,
        tx: tx.probe().clone(),
        rx: rx.probe().clone(),
        tx_events: tx.events(),
        rx_events: rx.events(),
        tx_stream: tx.send_stream(),
        rx_stream: rx.recv_stream(),
        tx_tracer: tx.tracer(),
        rx_tracer: rx.tracer(),
    };
    sim.attach_agent(sender_node, Box::new(SimAgent::new(tx)));
    sim.attach_agent(receiver_node, Box::new(SimAgent::new(rx)));
    handles
}

/// Attach several planned connections whose endpoints may share nodes.
///
/// [`attach_pair`] installs one agent per node, so two connections that
/// terminate on the same host (a request stream one way and a response
/// stream the other) silently overwrite each other. This variant groups
/// all endpoints per node into one [`SimHost`], routing each endpoint's
/// *inbound* flow — the feedback flow for a sender, the data flow for a
/// receiver — and attaches the hosts in ascending node order so a fixed
/// seed still replays byte-identically.
pub fn attach_pairs(
    sim: &mut Simulator,
    pairs: &[(NodeId, NodeId, &str, ConnectionPlan)],
) -> Vec<PairHandles> {
    let mut hosts: std::collections::BTreeMap<NodeId, SimHost> = std::collections::BTreeMap::new();
    let mut out = Vec::with_capacity(pairs.len());
    for (sender_node, receiver_node, name, plan) in pairs {
        let data_flow = sim.register_flow(name);
        let fb_flow = sim.register_flow(&format!("{name}-fb"));
        let tx = Session::sender(data_flow, *receiver_node, plan);
        let rx = Session::receiver(data_flow, fb_flow, *sender_node, plan);
        out.push(PairHandles {
            data_flow,
            fb_flow,
            tx: tx.probe().clone(),
            rx: rx.probe().clone(),
            tx_events: tx.events(),
            rx_events: rx.events(),
            tx_stream: tx.send_stream(),
            rx_stream: rx.recv_stream(),
            tx_tracer: tx.tracer(),
            rx_tracer: rx.tracer(),
        });
        hosts.entry(*sender_node).or_default().add(tx, [fb_flow]);
        hosts
            .entry(*receiver_node)
            .or_default()
            .add(rx, [data_flow]);
    }
    for (node, host) in hosts {
        sim.attach_agent(node, Box::new(host));
    }
    out
}

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

/// What one planned connection did by the end of a [`Backend::run`].
#[derive(Debug, Clone)]
pub struct ConnectionOutcome {
    /// The plan's label (or the backend-generated one).
    pub label: String,
    /// The negotiated capability set, if the handshake completed.
    pub negotiated: Option<CapabilitySet>,
    /// Application bytes delivered at the receiver.
    pub delivered_bytes: u64,
    /// When the connection finished its job, seconds from scenario start
    /// (virtual time on the simulator, wall time on socket backends);
    /// `None` if the horizon passed first. Finite transfers complete when
    /// fully delivered (reliable profiles) or fully transmitted
    /// (unreliable/partial); open-ended apps never complete.
    pub completion_s: Option<f64>,
    /// Delivered bytes over the active period, bits/second.
    pub goodput_bps: f64,
    /// Sender-side session events, in order.
    pub tx_events: Vec<SessionEvent>,
    /// Receiver-side session events, in order.
    pub rx_events: Vec<SessionEvent>,
    /// Sender-side probe snapshot (rate/loss traces, retransmissions).
    pub tx: ProbeData,
    /// Receiver-side probe snapshot (per-packet cost, peak state).
    pub rx: ProbeData,
}

/// The run-a-scenario seam: every backend takes the same
/// [`ConnectionPlan`]s and reports per-connection [`ConnectionOutcome`]s,
/// in plan order. Implementations: [`SimBackend`] (simulator),
/// `qtp_io::backend::UdpBackend` (one blocking socket pair per
/// connection) and `qtp_io::backend::MuxBackend` (all connections
/// multiplexed over one socket pair).
pub trait Backend {
    /// Short backend tag for reports ("sim", "udp", "mux").
    fn name(&self) -> &'static str;

    /// Run every plan to completion or the backend's horizon.
    fn run(&mut self, plans: &[ConnectionPlan]) -> std::io::Result<Vec<ConnectionOutcome>>;
}

/// Network shape a [`SimBackend`] builds.
#[derive(Debug, Clone)]
pub enum SimTopology {
    /// Every connection gets its own duplex path with these properties
    /// (loss applies in both directions, like the quickstart scenario).
    Isolated {
        /// Link rate.
        rate: Rate,
        /// One-way propagation delay.
        one_way: Duration,
        /// Bernoulli loss probability (0 disables loss).
        loss: f64,
    },
    /// All connections share a dumbbell bottleneck; `pairs` is overridden
    /// with the number of plans. (Boxed: the config dwarfs the other
    /// variant.)
    Dumbbell(Box<DumbbellConfig>),
}

/// The deterministic-simulator backend: same seed and plans ⇒
/// byte-identical outcomes.
#[derive(Debug, Clone)]
pub struct SimBackend {
    /// Network shape.
    pub topology: SimTopology,
    /// Simulation seed.
    pub seed: u64,
    /// Virtual-time bound.
    pub horizon: Duration,
    /// Completion-sampling granularity (completion times round up to
    /// this, keeping the stepped run deterministic).
    pub check_interval: Duration,
    /// When set, every connection's tracers are registered here as
    /// `<label>:tx` / `<label>:rx` — attaching whatever sink the registry
    /// carries and making per-connection counters collectable after the
    /// run. `None` (the default) leaves tracing disconnected.
    pub trace: Option<TraceRegistry>,
}

impl SimBackend {
    /// Isolated per-connection paths (the quickstart shape).
    pub fn isolated(rate: Rate, one_way: Duration, loss: f64) -> SimBackend {
        SimBackend {
            topology: SimTopology::Isolated {
                rate,
                one_way,
                loss,
            },
            seed: 42,
            horizon: Duration::from_secs(30),
            check_interval: Duration::from_millis(250),
            trace: None,
        }
    }

    /// A shared-bottleneck dumbbell (`cfg.pairs` is overridden per run).
    pub fn dumbbell(cfg: DumbbellConfig) -> SimBackend {
        SimBackend {
            topology: SimTopology::Dumbbell(Box::new(cfg)),
            seed: 42,
            horizon: Duration::from_secs(120),
            check_interval: Duration::from_millis(250),
            trace: None,
        }
    }

    /// Set the seed.
    pub fn seed(mut self, seed: u64) -> SimBackend {
        self.seed = seed;
        self
    }

    /// Set the horizon.
    pub fn horizon(mut self, horizon: Duration) -> SimBackend {
        self.horizon = horizon;
        self
    }

    /// Register every connection's tracers with `registry` (see
    /// [`SimBackend::trace`]).
    pub fn trace(mut self, registry: TraceRegistry) -> SimBackend {
        self.trace = Some(registry);
        self
    }
}

/// Whether a finite plan is done, by the simulator backend's
/// receiver-side measure: full delivery when the
/// [effective](ConnectionPlan::effective_reliability) reliability is
/// `Full`, backlog fully transmitted otherwise (profiles that promise no
/// delivery). Keying on the offer alone would make a policy-downgraded
/// connection uncompletable under loss. The socket backends apply the
/// same Full/not-Full split to their sender-side measure (`tx_complete`
/// in `qtp_io::backend`).
pub(crate) fn plan_complete(
    plan: &ConnectionPlan,
    negotiated: Option<CapabilitySet>,
    delivered_bytes: u64,
    tx: &Probe,
) -> bool {
    let Some(packets) = plan.finite_packets() else {
        return false;
    };
    if plan.effective_reliability(negotiated) == ReliabilityMode::Full {
        delivered_bytes >= packets * plan.payload as u64
    } else {
        tx.read(|d| d.tx_data_pkts - d.tx_retransmissions) >= packets
    }
}

/// Engine-level counters from one simulator-backend run, for the scaling
/// benchmarks. `events_processed` and `packet_pool_high_water` are
/// deterministic (pure functions of plans + seed); `events_processed`
/// divided by wall-clock time is the events/s throughput metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimRunMetrics {
    /// Events the simulator dispatched.
    pub events_processed: u64,
    /// Peak number of concurrently live packets in the arena.
    pub packet_pool_high_water: usize,
}

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&mut self, plans: &[ConnectionPlan]) -> std::io::Result<Vec<ConnectionOutcome>> {
        self.run_instrumented(plans).map(|(outcomes, _)| outcomes)
    }
}

impl SimBackend {
    /// [`Backend::run`], additionally reporting engine counters.
    pub fn run_instrumented(
        &mut self,
        plans: &[ConnectionPlan],
    ) -> std::io::Result<(Vec<ConnectionOutcome>, SimRunMetrics)> {
        // Build the topology: one (sender, receiver) node pair per plan.
        let (mut sim, nodes): (Simulator, Vec<(NodeId, NodeId)>) = match &self.topology {
            SimTopology::Isolated {
                rate,
                one_way,
                loss,
            } => {
                let mut b = NetworkBuilder::new();
                let mut nodes = Vec::with_capacity(plans.len());
                for _ in plans {
                    let s = b.host();
                    let r = b.host();
                    let mut link = LinkConfig::new(*rate, *one_way);
                    if *loss > 0.0 {
                        link = link.with_loss(LossModel::bernoulli(*loss));
                    }
                    b.duplex_link(s, r, link);
                    nodes.push((s, r));
                }
                (b.build(self.seed), nodes)
            }
            SimTopology::Dumbbell(cfg) => {
                let cfg = DumbbellConfig {
                    pairs: plans.len(),
                    ..(**cfg).clone()
                };
                let (sim, net) = Dumbbell::build(&cfg, self.seed);
                let nodes = net
                    .senders
                    .iter()
                    .copied()
                    .zip(net.receivers.iter().copied())
                    .collect();
                (sim, nodes)
            }
        };

        let labels: Vec<String> = plans
            .iter()
            .enumerate()
            .map(|(i, p)| p.display_label(i))
            .collect();
        let handles: Vec<PairHandles> = plans
            .iter()
            .zip(&nodes)
            .zip(&labels)
            .map(|((plan, &(s, r)), label)| attach_pair(&mut sim, s, r, label, plan))
            .collect();
        if let Some(reg) = &self.trace {
            for (label, h) in labels.iter().zip(&handles) {
                reg.register(&format!("{label}:tx"), &h.tx_tracer);
                reg.register(&format!("{label}:rx"), &h.rx_tracer);
            }
        }

        // Stepped run: completion is sampled every check_interval, keeping
        // the scan cost negligible and the result deterministic.
        let mut completion: Vec<Option<SimTime>> = vec![None; plans.len()];
        let horizon = SimTime::ZERO + self.horizon;
        let mut t = SimTime::ZERO;
        while t < horizon {
            t = (t + self.check_interval).min(horizon);
            sim.run_until(t);
            let mut all_done = true;
            for (i, (plan, h)) in plans.iter().zip(&handles).enumerate() {
                if completion[i].is_some() {
                    continue;
                }
                let delivered = sim.stats().flow(h.data_flow).bytes_app_delivered;
                if plan_complete(plan, connected_caps(&h.tx_events), delivered, &h.tx) {
                    completion[i] = Some(t);
                } else {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
        }

        let outcomes = plans
            .iter()
            .zip(&handles)
            .enumerate()
            .map(|(i, (_, h))| {
                let delivered = sim.stats().flow(h.data_flow).bytes_app_delivered;
                let elapsed = completion[i].unwrap_or(horizon).as_secs_f64();
                ConnectionOutcome {
                    label: labels[i].clone(),
                    negotiated: connected_caps(&h.tx_events),
                    delivered_bytes: delivered,
                    completion_s: completion[i].map(|c| c.as_secs_f64()),
                    goodput_bps: if elapsed > 0.0 {
                        delivered as f64 * 8.0 / elapsed
                    } else {
                        0.0
                    },
                    tx_events: h.tx_events.drain(),
                    rx_events: h.rx_events.drain(),
                    tx: h.tx.snapshot(),
                    rx: h.rx.snapshot(),
                }
            })
            .collect();
        let metrics = SimRunMetrics {
            events_processed: sim.events_processed(),
            packet_pool_high_water: sim.packet_pool_high_water(),
        };
        Ok((outcomes, metrics))
    }
}

/// The negotiated set recorded in an event stream, if any (outcome
/// extraction for sessions that moved into a simulator or driver).
pub fn connected_caps(events: &SessionEvents) -> Option<CapabilitySet> {
    events.inner.borrow().iter().find_map(|e| match e {
        SessionEvent::Connected { negotiated } => Some(*negotiated),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_and_roundtrips() {
        let p = Profile::new()
            .reliability(Reliability::Ttl(Duration::from_millis(200)))
            .feedback(FeedbackMode::SenderLoss)
            .cc(CcKind::Tfrc)
            .build()
            .unwrap();
        assert_eq!(Profile::try_from(p.caps()), Ok(p));

        assert_eq!(
            Profile::new()
                .reliability(Reliability::Ttl(Duration::ZERO))
                .build(),
            Err(ProfileError::ZeroTtl)
        );
        assert_eq!(
            Profile::new().reliability(Reliability::Budget(0)).build(),
            Err(ProfileError::ZeroRetxBudget)
        );
        assert_eq!(
            Profile::new()
                .cc(CcKind::Fixed { rate: Rate::ZERO })
                .build(),
            Err(ProfileError::ZeroFixedRate)
        );
    }

    #[test]
    fn presets_match_capability_presets() {
        assert_eq!(
            Profile::qtp_af(Rate::from_mbps(2)).caps(),
            CapabilitySet::qtp_af(Rate::from_mbps(2))
        );
        assert_eq!(Profile::qtp_light().caps(), CapabilitySet::qtp_light());
        assert_eq!(Profile::tfrc().caps(), CapabilitySet::tfrc_standard());
        let ttl = Duration::from_millis(150);
        assert_eq!(
            Profile::qtp_light_partial(ttl).unwrap().caps(),
            CapabilitySet::qtp_light_partial(ttl)
        );
        assert_eq!(
            Profile::qtp_light_partial(Duration::ZERO),
            Err(ProfileError::ZeroTtl)
        );
    }

    /// Drive a sender/receiver session pair purely through the poll-style
    /// surface with a virtual clock and a loss-free in-memory "wire" — no
    /// simulator, no sockets. This is the contract a hand-written event
    /// loop programs against.
    #[test]
    fn poll_surface_completes_a_reliable_transfer() {
        const PACKETS: u64 = 20;
        let plan = ConnectionPlan::new(Profile::qtp_af(Rate::from_kbps(500))).finite(PACKETS);
        let mut tx = Session::sender(0, 1, &plan);
        let mut rx = Session::receiver(0, 1, 0, &plan);

        let mut now = SimTime::ZERO;
        tx.start(now);
        rx.start(now);
        for _ in 0..100_000 {
            // Shuttle datagrams until the wire is quiet.
            loop {
                let mut moved = false;
                while let Some(t) = tx.poll_transmit() {
                    rx.handle_input(now, t.wire_size, &t.header);
                    moved = true;
                }
                while let Some(t) = rx.poll_transmit() {
                    tx.handle_input(now, t.wire_size, &t.header);
                    moved = true;
                }
                if !moved {
                    break;
                }
            }
            if rx.delivered_packets() >= PACKETS && tx.all_acked() {
                break;
            }
            // Advance the virtual clock to the earliest armed deadline.
            let next = match (tx.poll_timeout(), rx.poll_timeout()) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => panic!("deadlock: no timers and not done"),
            };
            now = now.max(next);
            tx.on_timeout(now);
            rx.on_timeout(now);
        }
        assert_eq!(rx.delivered_packets(), PACKETS);
        assert!(tx.all_acked());
        assert_eq!(rx.delivered_bytes(), PACKETS * 1000);

        // Both sides observed the negotiation outcome as a typed event.
        let expected = ServerPolicy::default().negotiate(plan.profile.caps());
        assert_eq!(tx.negotiated(), Some(expected));
        assert!(matches!(
            tx.poll_event(),
            Some(SessionEvent::Connected { negotiated }) if negotiated == expected
        ));
        let rx_events = rx.events().drain();
        assert!(rx_events
            .iter()
            .any(|e| matches!(e, SessionEvent::Connected { .. })));
        let delivered: Vec<u64> = rx_events
            .iter()
            .filter_map(|e| match e {
                SessionEvent::Delivered { bytes } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(delivered.iter().sum::<u64>(), PACKETS * 1000);
        // Nothing polled mid-run, so every delivery coalesced into the one
        // event at the queue tail — the queue stays O(1), not O(ADUs).
        assert_eq!(delivered.len(), 1, "adjacent deliveries coalesce");
    }

    /// End-to-end stream data plane over the poll surface: a file goes in
    /// through `SendStream::send`, comes out byte-exact through
    /// `RecvStream::recv`, and the wire-level FIN / FIN-ACK close completes
    /// with both sides' typed events observed.
    #[test]
    fn stream_transfer_completes_with_wire_close() {
        use crate::stream::StreamError;
        let file: Vec<u8> = (0..100_000u32)
            .map(|i| (i.wrapping_mul(31) % 251) as u8)
            .collect();
        let plan = ConnectionPlan::new(Profile::qtp_af(Rate::from_mbps(50)))
            .stream(StreamConfig::with_send_buf(16 * 1024));
        let mut tx = Session::sender(0, 1, &plan);
        let mut rx = Session::receiver(0, 1, 0, &plan);
        let send = tx.send_stream().expect("sender side has a SendStream");
        let recv = rx.recv_stream().expect("receiver side has a RecvStream");
        assert!(tx.recv_stream().is_none() && rx.send_stream().is_none());

        let mut now = SimTime::ZERO;
        tx.start(now);
        rx.start(now);
        let mut offset = 0usize;
        let mut received = Vec::new();
        let mut saw_full = false;
        for _ in 0..1_000_000 {
            while offset < file.len() {
                let end = (offset + 1900).min(file.len());
                match send.send(&file[offset..end]) {
                    Ok(()) => offset = end,
                    Err(StreamError::Full) => {
                        saw_full = true;
                        break;
                    }
                    Err(e) => panic!("send failed: {e}"),
                }
            }
            if offset == file.len() && !send.is_finished() {
                send.finish();
            }
            loop {
                let mut moved = false;
                while let Some(t) = tx.poll_transmit() {
                    rx.handle_input(now, t.wire_size, &t.header);
                    moved = true;
                }
                while let Some(t) = rx.poll_transmit() {
                    tx.handle_input(now, t.wire_size, &t.header);
                    moved = true;
                }
                if !moved {
                    break;
                }
            }
            while let Some(m) = recv.recv() {
                received.extend(m);
            }
            if recv.is_finished() && tx.is_closed() {
                break;
            }
            let next = match (tx.poll_timeout(), rx.poll_timeout()) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => panic!("deadlock: no timers and not done"),
            };
            now = now.max(next);
            tx.on_timeout(now);
            rx.on_timeout(now);
        }
        assert_eq!(received.len(), file.len());
        assert_eq!(received, file, "byte-exact stream transfer");
        assert!(saw_full, "bounded send buffer exerted backpressure");
        assert!(recv.is_finished());
        assert!(tx.is_closed(), "FIN / FIN-ACK handshake completed");
        assert_eq!(tx.poll_timeout(), None, "sender timers drained after close");

        let tx_events = tx.events().drain();
        assert!(tx_events
            .iter()
            .any(|e| matches!(e, SessionEvent::Writable)));
        assert!(
            tx_events.iter().any(|e| matches!(e, SessionEvent::Closed)),
            "graceful close surfaced as Closed"
        );
        let rx_events = rx.events().drain();
        let readable: u64 = rx_events
            .iter()
            .filter_map(|e| match e {
                SessionEvent::Readable { messages } => Some(*messages),
                _ => None,
            })
            .sum();
        assert_eq!(readable, recv.messages_received());
        assert!(rx_events
            .iter()
            .any(|e| matches!(e, SessionEvent::Finished)));
    }

    /// `Session::close` on a running stream sender performs the wire-level
    /// handshake instead of closing locally: `Closed` only fires once the
    /// receiver acknowledged the FIN.
    #[test]
    fn graceful_close_waits_for_finack() {
        let plan = ConnectionPlan::new(Profile::qtp_af(Rate::from_mbps(10)))
            .stream(StreamConfig::default());
        let mut tx = Session::sender(0, 1, &plan);
        let mut rx = Session::receiver(0, 1, 0, &plan);
        let send = tx.send_stream().unwrap();
        send.send(b"payload").unwrap();

        let mut now = SimTime::ZERO;
        tx.start(now);
        rx.start(now);
        for _ in 0..10_000 {
            loop {
                let mut moved = false;
                while let Some(t) = tx.poll_transmit() {
                    rx.handle_input(now, t.wire_size, &t.header);
                    moved = true;
                }
                while let Some(t) = rx.poll_transmit() {
                    tx.handle_input(now, t.wire_size, &t.header);
                    moved = true;
                }
                if !moved {
                    break;
                }
            }
            if tx.negotiated().is_some() && !tx.is_closed() && !send.is_finished() {
                tx.close();
                assert!(!tx.is_closed(), "graceful close defers Closed to FIN-ACK");
            }
            if tx.is_closed() {
                break;
            }
            let next = match (tx.poll_timeout(), rx.poll_timeout()) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => panic!("no timers while close pending"),
            };
            now = now.max(next);
            tx.on_timeout(now);
            rx.on_timeout(now);
        }
        assert!(tx.is_closed());
        assert!(tx
            .events()
            .drain()
            .iter()
            .any(|e| matches!(e, SessionEvent::Closed)));
        assert!(rx
            .events()
            .drain()
            .iter()
            .any(|e| matches!(e, SessionEvent::Finished)));
    }

    #[test]
    fn malformed_capability_offer_surfaces_as_rejected() {
        let plan = ConnectionPlan::new(Profile::tfrc());
        let mut rx = Session::receiver(0, 1, 0, &plan);
        rx.start(SimTime::ZERO);

        // A SYN whose reliability wire code (first capability byte after
        // the type + timestamp) is garbage.
        let mut syn = QtpPacket::Syn {
            ts_nanos: 7,
            offered: CapabilitySet::qtp_light(),
        }
        .encode();
        syn[9] = 0xEE;
        rx.handle_input(SimTime::ZERO, 64, &syn);
        assert_eq!(
            rx.poll_event(),
            Some(SessionEvent::Rejected {
                error: CapsError::BadReliability(0xEE)
            })
        );
        // Nothing was negotiated and no SYNACK went out.
        assert_eq!(rx.negotiated(), None);
        assert!(rx.poll_transmit().is_none());

        // Garbage that is not a capability problem stays silent.
        rx.handle_input(SimTime::ZERO, 64, &[0xFF, 1, 2, 3]);
        assert_eq!(rx.poll_event(), None);
    }

    /// A peer offering a congestion-control code from a future protocol
    /// version (or a fuzzer) is rejected with the typed capability error,
    /// not panicked on and not silently granted a different controller.
    #[test]
    fn unknown_cc_offer_surfaces_as_rejected() {
        let plan = ConnectionPlan::new(Profile::tfrc());
        let mut rx = Session::receiver(0, 1, 0, &plan);
        rx.start(SimTime::ZERO);

        let mut syn = QtpPacket::Syn {
            ts_nanos: 7,
            offered: CapabilitySet::qtp_light(),
        }
        .encode();
        // type(1) + ts(8) + rel code(1) + rel param(8) + fb(1) = offset of
        // the cc wire code.
        syn[19] = 0x2A;
        rx.handle_input(SimTime::ZERO, 64, &syn);
        assert_eq!(
            rx.poll_event(),
            Some(SessionEvent::Rejected {
                error: CapsError::BadCc(0x2A)
            })
        );
        assert_eq!(rx.negotiated(), None);
        assert!(rx.poll_transmit().is_none(), "no SYNACK for a bad offer");
    }

    #[test]
    fn close_emits_closed_and_ignores_further_input() {
        let plan = ConnectionPlan::new(Profile::qtp_light());
        let mut tx = Session::sender(0, 1, &plan);
        tx.start(SimTime::ZERO);
        assert!(tx.poll_transmit().is_some(), "SYN emitted on start");
        tx.close();
        assert!(matches!(tx.poll_event(), Some(SessionEvent::Closed)));
        assert!(tx.is_closed());
        let syn_ack = QtpPacket::SynAck {
            ts_echo_nanos: 0,
            chosen: CapabilitySet::qtp_light(),
        }
        .encode();
        tx.handle_input(SimTime::from_millis(1), 64, &syn_ack);
        assert_eq!(tx.negotiated(), None, "input after close is ignored");
        assert_eq!(tx.poll_timeout(), None, "timers cleared on close");
    }

    #[test]
    fn sim_backend_runs_plans_to_completion() {
        let plans = [
            ConnectionPlan::new(Profile::qtp_af(Rate::from_kbps(500)))
                .label("af")
                .finite(15),
            ConnectionPlan::new(Profile::qtp_light())
                .label("light")
                .finite(15),
        ];
        let mut backend = SimBackend::isolated(Rate::from_mbps(10), Duration::from_millis(5), 0.0);
        let outcomes = backend.run(&plans).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].label, "af");
        for o in &outcomes {
            assert!(o.completion_s.is_some(), "{} completed", o.label);
            assert!(o.negotiated.is_some(), "{} negotiated", o.label);
            assert!(o.goodput_bps > 0.0);
        }
        assert_eq!(outcomes[0].delivered_bytes, 15 * 1000, "reliable delivery");
        // Determinism: the same backend and plans reproduce the outcomes.
        let again = backend.run(&plans).unwrap();
        assert_eq!(outcomes[0].completion_s, again[0].completion_s);
        assert_eq!(outcomes[1].goodput_bps, again[1].goodput_bps);
    }

    #[test]
    fn downgraded_connection_still_completes_under_loss() {
        // Offer Full reliability to a receiver that refuses reliability:
        // the negotiated mode is None, nothing is ever retransmitted, and
        // completion must therefore be judged by the *negotiated* mode
        // (backlog transmitted), not the offer (full delivery, which loss
        // makes unreachable).
        let plan = ConnectionPlan::new(Profile::qtp_af(Rate::from_kbps(500)))
            .label("downgraded")
            .finite(30)
            .policy(ServerPolicy {
                allow_reliability: false,
                ..ServerPolicy::default()
            });
        let mut backend =
            SimBackend::isolated(Rate::from_mbps(10), Duration::from_millis(10), 0.05)
                .horizon(Duration::from_secs(20));
        let o = &backend.run(std::slice::from_ref(&plan)).unwrap()[0];
        let negotiated = o.negotiated.expect("handshake completed");
        assert_eq!(negotiated.reliability, ReliabilityMode::None, "downgraded");
        assert!(
            o.completion_s.is_some(),
            "downgraded connection completes once its backlog is transmitted"
        );
        // 5% loss: with reliability refused, full delivery is (almost
        // surely) impossible — which is exactly why the offer must not be
        // the completion criterion.
        assert_eq!(o.tx.tx_retransmissions, 0);
    }

    #[test]
    fn ttl_expiry_surfaces_as_session_events() {
        // A TTL so tight on a rate so slow that some backlog must expire.
        let plan =
            ConnectionPlan::new(Profile::qtp_light_partial(Duration::from_millis(30)).unwrap())
                .app(AppModel::cbr(Rate::from_kbps(800)))
                .label("ttl");
        let mut backend =
            SimBackend::isolated(Rate::from_kbps(100), Duration::from_millis(40), 0.05)
                .horizon(Duration::from_secs(10));
        let outcomes = backend.run(std::slice::from_ref(&plan)).unwrap();
        let expired: u64 = outcomes[0]
            .tx_events
            .iter()
            .filter_map(|e| match e {
                SessionEvent::TtlExpired { packets } => Some(*packets),
                _ => None,
            })
            .sum();
        assert!(expired > 0, "stale ADUs abandoned under TTL reliability");
        assert_eq!(expired, outcomes[0].tx.tx_abandoned);
    }

    #[test]
    fn attach_pairs_shares_nodes_between_opposite_connections() {
        // Two stream connections between the same two hosts, one in each
        // direction — each node runs a sender of one connection and the
        // receiver of the other behind a single SimHost agent. attach_pair
        // would silently overwrite one agent with the other.
        let mut b = NetworkBuilder::new();
        let a = b.host();
        let z = b.host();
        let link = LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(5));
        b.simplex_link(a, z, link.clone());
        b.simplex_link(z, a, link);
        let mut sim = b.build(11);

        let plan = |label: &str| {
            ConnectionPlan::new(Profile::qtp_af(Rate::from_mbps(2)))
                .label(label)
                .stream(StreamConfig::default())
        };
        let pairs = attach_pairs(
            &mut sim,
            &[(a, z, "east", plan("east")), (z, a, "west", plan("west"))],
        );
        let east = pattern(4096, 1);
        let west = pattern(4096, 2);
        for (h, data) in pairs.iter().zip([&east, &west]) {
            let tx = h.tx_stream.as_ref().expect("stream plan");
            tx.send(data).unwrap();
            tx.finish();
        }
        sim.run_until(SimTime::ZERO + Duration::from_secs(20));
        for (h, data) in pairs.iter().zip([&east, &west]) {
            let rx = h.rx_stream.as_ref().expect("stream plan");
            let mut got = Vec::new();
            while let Some(m) = rx.recv() {
                got.extend(m);
            }
            assert_eq!(&got, data, "byte-exact through the shared-node agents");
            assert!(rx.is_finished(), "FIN crossed the shared-node agents");
        }
    }

    fn pattern(len: usize, salt: u64) -> Vec<u8> {
        (0..len as u64)
            .map(|i| ((i ^ salt).wrapping_mul(2654435761) >> 7) as u8)
            .collect()
    }
}
