//! Capability sets and negotiation.
//!
//! The paper's central idea: a transport whose service is **negotiated per
//! connection** from three orthogonal axes (paper §1):
//!
//! 1. *reliability* — none / full / partial (TTL or retransmission budget);
//! 2. *receiver processing* — standard RFC 3448 receiver-side loss
//!    estimation, or the QTPlight sender-side variant that leaves the
//!    receiver with nothing but SACK generation;
//! 3. *QoS awareness* — plain TFRC, or gTFRC with a bandwidth target
//!    negotiated with the underlying AF network service.
//!
//! A client offers a [`CapabilitySet`]; the server intersects it with its
//! own support ([`ServerPolicy`]) and returns the chosen set in the
//! `SYNACK`. Both named instances are just presets:
//!
//! * **QTPAF**   = `Gtfrc(g)` + `Full` + `ReceiverLoss`
//! * **QTPlight** = `Tfrc` + (usually `None` or partial) + `SenderLoss`

use qtp_sack::ReliabilityMode;
use qtp_simnet::time::Rate;
use std::time::Duration;

/// A capability field that failed to decode, carrying the offending wire
/// code so negotiation failures are diagnosable (and surfaceable to
/// applications as a `Rejected` session event) instead of a silent `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapsError {
    /// Unknown reliability-mode wire code.
    BadReliability(u8),
    /// Unknown feedback-mode wire code.
    BadFeedback(u8),
    /// Unknown congestion-control wire code.
    BadCc(u8),
}

impl std::fmt::Display for CapsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapsError::BadReliability(c) => write!(f, "unknown reliability wire code {c}"),
            CapsError::BadFeedback(c) => write!(f, "unknown feedback wire code {c}"),
            CapsError::BadCc(c) => write!(f, "unknown congestion-control wire code {c}"),
        }
    }
}

impl std::error::Error for CapsError {}

/// Where the TFRC loss-event rate is computed (axis 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackMode {
    /// RFC 3448: the receiver maintains the loss history and reports `p`.
    ReceiverLoss,
    /// QTPlight: the receiver sends SACK-style feedback only; the sender
    /// estimates `p` itself.
    SenderLoss,
}

impl FeedbackMode {
    /// Stable wire code.
    pub fn wire_code(self) -> u8 {
        match self {
            FeedbackMode::ReceiverLoss => 0,
            FeedbackMode::SenderLoss => 1,
        }
    }

    /// Decode a wire code.
    pub fn from_wire(code: u8) -> Result<Self, CapsError> {
        match code {
            0 => Ok(FeedbackMode::ReceiverLoss),
            1 => Ok(FeedbackMode::SenderLoss),
            other => Err(CapsError::BadFeedback(other)),
        }
    }
}

/// Decode a reliability-mode wire code plus its parameter (TTL in
/// microseconds, or a retransmission budget).
pub fn reliability_from_wire(code: u8, param: u64) -> Result<ReliabilityMode, CapsError> {
    match code {
        0 => Ok(ReliabilityMode::None),
        1 => Ok(ReliabilityMode::Full),
        2 => Ok(ReliabilityMode::PartialTtl(Duration::from_micros(param))),
        3 => Ok(ReliabilityMode::PartialRetx(param as u32)),
        other => Err(CapsError::BadReliability(other)),
    }
}

/// Decode a congestion-control wire code plus its rate parameter (bits/s).
pub fn cc_from_wire(code: u8, param: u64) -> Result<CcKind, CapsError> {
    match code {
        0 => Ok(CcKind::Tfrc),
        1 => Ok(CcKind::Gtfrc {
            target: Rate::from_bps(param),
        }),
        2 => Ok(CcKind::Fixed {
            rate: Rate::from_bps(param),
        }),
        3 => Ok(CcKind::Cubic),
        4 => Ok(CcKind::BbrLite),
        other => Err(CapsError::BadCc(other)),
    }
}

/// Congestion-control variant (axis 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcKind {
    /// RFC 3448 TFRC.
    Tfrc,
    /// gTFRC with a negotiated bandwidth guarantee.
    Gtfrc { target: Rate },
    /// Fixed-rate (open loop) — used by ablation experiments only.
    Fixed { rate: Rate },
    /// RFC 8312 CUBIC window growth, paced at `cwnd / RTT`.
    Cubic,
    /// Deterministic BBR-lite (windowed bandwidth/RTT model).
    BbrLite,
}

impl CcKind {
    /// Stable wire code (without parameters).
    pub fn wire_code(self) -> u8 {
        match self {
            CcKind::Tfrc => 0,
            CcKind::Gtfrc { .. } => 1,
            CcKind::Fixed { .. } => 2,
            CcKind::Cubic => 3,
            CcKind::BbrLite => 4,
        }
    }
}

/// A full service profile, offered/chosen during the handshake.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapabilitySet {
    pub reliability: ReliabilityMode,
    pub feedback: FeedbackMode,
    pub cc: CcKind,
}

impl CapabilitySet {
    /// The **QTPAF** profile: QoS-aware congestion control with full
    /// reliability (paper §4).
    pub fn qtp_af(target: Rate) -> Self {
        CapabilitySet {
            reliability: ReliabilityMode::Full,
            feedback: FeedbackMode::ReceiverLoss,
            cc: CcKind::Gtfrc { target },
        }
    }

    /// The **QTPlight** profile: sender-side loss estimation, no
    /// retransmission (paper §3's streaming configuration).
    pub fn qtp_light() -> Self {
        CapabilitySet {
            reliability: ReliabilityMode::None,
            feedback: FeedbackMode::SenderLoss,
            cc: CcKind::Tfrc,
        }
    }

    /// QTPlight with partial reliability — the composition the paper's §3
    /// highlights as a free by-product ("our solution allows applying
    /// efficient selective retransmission of lost data").
    pub fn qtp_light_partial(ttl: Duration) -> Self {
        CapabilitySet {
            reliability: ReliabilityMode::PartialTtl(ttl),
            feedback: FeedbackMode::SenderLoss,
            cc: CcKind::Tfrc,
        }
    }

    /// Standard TFRC (the baseline instance): receiver-side estimation,
    /// no reliability.
    pub fn tfrc_standard() -> Self {
        CapabilitySet {
            reliability: ReliabilityMode::None,
            feedback: FeedbackMode::ReceiverLoss,
            cc: CcKind::Tfrc,
        }
    }
}

/// What a server is willing to grant.
#[derive(Debug, Clone)]
pub struct ServerPolicy {
    /// Accept sender-side estimation requests? (A powerful server says yes;
    /// that is the paper's asymmetry argument.)
    pub allow_sender_loss: bool,
    /// Accept reliability modes that retransmit?
    pub allow_reliability: bool,
    /// Largest bandwidth guarantee the server will grant, if any.
    pub max_target: Option<Rate>,
}

impl Default for ServerPolicy {
    fn default() -> Self {
        ServerPolicy {
            allow_sender_loss: true,
            allow_reliability: true,
            max_target: None,
        }
    }
}

impl ServerPolicy {
    /// Intersect an offer with this policy, producing the chosen set.
    /// Degradation is always toward the *simpler* mechanism, never a
    /// rejection: the connection proceeds with the best granted service.
    pub fn negotiate(&self, offered: CapabilitySet) -> CapabilitySet {
        let feedback = if offered.feedback == FeedbackMode::SenderLoss && !self.allow_sender_loss {
            FeedbackMode::ReceiverLoss
        } else {
            offered.feedback
        };
        let reliability = if offered.reliability.retransmits() && !self.allow_reliability {
            ReliabilityMode::None
        } else {
            offered.reliability
        };
        let cc = match offered.cc {
            CcKind::Gtfrc { target } => match self.max_target {
                Some(max) if target > max => CcKind::Gtfrc { target: max },
                Some(_) => CcKind::Gtfrc { target },
                None => CcKind::Gtfrc { target },
            },
            other => other,
        };
        CapabilitySet {
            reliability,
            feedback,
            cc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_definitions() {
        let af = CapabilitySet::qtp_af(Rate::from_mbps(2));
        assert_eq!(af.reliability, ReliabilityMode::Full);
        assert_eq!(af.feedback, FeedbackMode::ReceiverLoss);
        assert!(matches!(af.cc, CcKind::Gtfrc { .. }));

        let light = CapabilitySet::qtp_light();
        assert_eq!(light.reliability, ReliabilityMode::None);
        assert_eq!(light.feedback, FeedbackMode::SenderLoss);
        assert_eq!(light.cc, CcKind::Tfrc);
    }

    #[test]
    fn permissive_server_grants_offer() {
        let policy = ServerPolicy::default();
        let offer = CapabilitySet::qtp_light_partial(Duration::from_millis(200));
        assert_eq!(policy.negotiate(offer), offer);
    }

    #[test]
    fn server_can_refuse_sender_loss() {
        let policy = ServerPolicy {
            allow_sender_loss: false,
            ..ServerPolicy::default()
        };
        let chosen = policy.negotiate(CapabilitySet::qtp_light());
        assert_eq!(chosen.feedback, FeedbackMode::ReceiverLoss);
        assert_eq!(chosen.reliability, ReliabilityMode::None, "other axes kept");
    }

    #[test]
    fn server_can_refuse_reliability() {
        let policy = ServerPolicy {
            allow_reliability: false,
            ..ServerPolicy::default()
        };
        let chosen = policy.negotiate(CapabilitySet::qtp_af(Rate::from_mbps(1)));
        assert_eq!(chosen.reliability, ReliabilityMode::None);
        assert!(matches!(chosen.cc, CcKind::Gtfrc { .. }), "QoS axis kept");
    }

    #[test]
    fn target_clamped_to_server_maximum() {
        let policy = ServerPolicy {
            max_target: Some(Rate::from_mbps(1)),
            ..ServerPolicy::default()
        };
        let chosen = policy.negotiate(CapabilitySet::qtp_af(Rate::from_mbps(5)));
        assert_eq!(
            chosen.cc,
            CcKind::Gtfrc {
                target: Rate::from_mbps(1)
            }
        );
        // Under the cap: unchanged.
        let chosen = policy.negotiate(CapabilitySet::qtp_af(Rate::from_kbps(500)));
        assert_eq!(
            chosen.cc,
            CcKind::Gtfrc {
                target: Rate::from_kbps(500)
            }
        );
    }

    #[test]
    fn wire_codes_roundtrip() {
        for m in [FeedbackMode::ReceiverLoss, FeedbackMode::SenderLoss] {
            assert_eq!(FeedbackMode::from_wire(m.wire_code()), Ok(m));
        }
        assert_eq!(FeedbackMode::from_wire(9), Err(CapsError::BadFeedback(9)));
    }

    #[test]
    fn decode_errors_carry_the_offending_code() {
        assert_eq!(
            reliability_from_wire(7, 0),
            Err(CapsError::BadReliability(7))
        );
        assert_eq!(cc_from_wire(250, 0), Err(CapsError::BadCc(250)));
        // Codes 3 and 4 are the window/model controllers; 5 is the first
        // unassigned code.
        assert_eq!(cc_from_wire(3, 0), Ok(CcKind::Cubic));
        assert_eq!(cc_from_wire(4, 0), Ok(CcKind::BbrLite));
        assert_eq!(cc_from_wire(5, 0), Err(CapsError::BadCc(5)));
        for k in [CcKind::Cubic, CcKind::BbrLite] {
            assert_eq!(cc_from_wire(k.wire_code(), 0), Ok(k));
        }
        assert_eq!(
            reliability_from_wire(2, 1_000).unwrap(),
            ReliabilityMode::PartialTtl(Duration::from_millis(1))
        );
        assert!(matches!(cc_from_wire(1, 8_000), Ok(CcKind::Gtfrc { .. })));
    }
}
