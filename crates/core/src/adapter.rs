//! Simulator adapter: run any sans-io [`Endpoint`] as a simnet [`Agent`].
//!
//! The adapter is deliberately mechanical — it is the *only* place where
//! endpoint commands meet the simulator — so that a fixed-seed simulation
//! through the seam replays byte-identically to the pre-seam code:
//!
//! * `out.now` is set from `ctx.now` before every callback;
//! * commands are applied strictly in emission order after each callback
//!   ([`Transmit`](crate::driver::Transmit) → [`Ctx::send_new`], which
//!   allocates packet uids in call order; `SetTimer` → [`Ctx::set_timer_at`],
//!   whose events tie-break by insertion order);
//! * `Deliver` goes straight to the per-flow statistics, exactly as the
//!   endpoints used to call `ctx.stats.app_deliver` themselves.
//!
//! This adapter lives in `qtp-core` rather than `qtp-simnet` because the
//! crate dependency points this way: core implements the seam *and* knows
//! the simulator, while simnet stays protocol-agnostic.

use qtp_simnet::packet::Packet;
use qtp_simnet::sim::{Agent, Ctx};

use crate::driver::{Command, Endpoint, Outbox};

/// Wraps an [`Endpoint`] into a simulator [`Agent`].
pub struct SimAgent<E: Endpoint> {
    ep: E,
    out: Outbox,
}

impl<E: Endpoint> SimAgent<E> {
    pub fn new(ep: E) -> Self {
        SimAgent {
            ep,
            out: Outbox::new(),
        }
    }

    /// The wrapped endpoint (e.g. to read negotiated capabilities after a
    /// run — note agents are moved into the simulator, so this is mostly
    /// useful in tests that drive the adapter by hand).
    pub fn endpoint(&self) -> &E {
        &self.ep
    }

    fn flush(&mut self, ctx: &mut Ctx) {
        while let Some(cmd) = self.out.poll_cmd() {
            match cmd {
                Command::Transmit(t) => ctx.send_new(t.flow, t.dst, t.wire_size, t.header),
                Command::SetTimer { at, token } => ctx.set_timer_at(at, token),
                Command::Deliver { flow, bytes } => ctx.stats.app_deliver(flow, bytes),
            }
        }
    }
}

impl<E: Endpoint> Agent for SimAgent<E> {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.out.now = ctx.now;
        self.ep.on_start(&mut self.out);
        self.flush(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: &Packet) {
        self.out.now = ctx.now;
        self.ep
            .handle_datagram(&mut self.out, pkt.wire_size, &pkt.header);
        self.flush(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        self.out.now = ctx.now;
        self.ep.on_timer(&mut self.out, token);
        self.flush(ctx);
    }
}
