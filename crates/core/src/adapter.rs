//! Simulator adapter: run any sans-io [`Endpoint`] as a simnet [`Agent`].
//!
//! The adapter is deliberately mechanical — it is the *only* place where
//! endpoint commands meet the simulator — so that a fixed-seed simulation
//! through the seam replays byte-identically to the pre-seam code:
//!
//! * `out.now` is set from `ctx.now` before every callback;
//! * commands are applied strictly in emission order after each callback
//!   ([`Transmit`](crate::driver::Transmit) → [`Ctx::send_new`], which
//!   allocates packet uids in call order; `SetTimer` → [`Ctx::set_timer_at`],
//!   whose events tie-break by insertion order);
//! * `Deliver` goes straight to the per-flow statistics, exactly as the
//!   endpoints used to call `ctx.stats.app_deliver` themselves.
//!
//! This adapter lives in `qtp-core` rather than `qtp-simnet` because the
//! crate dependency points this way: core implements the seam *and* knows
//! the simulator, while simnet stays protocol-agnostic.

use std::collections::HashMap;

use qtp_simnet::packet::{FlowId, Packet};
use qtp_simnet::sim::{Agent, Ctx};

use crate::driver::{Command, Endpoint, Outbox};

/// Wraps an [`Endpoint`] into a simulator [`Agent`].
pub struct SimAgent<E: Endpoint> {
    ep: E,
    out: Outbox,
}

impl<E: Endpoint> SimAgent<E> {
    pub fn new(ep: E) -> Self {
        SimAgent {
            ep,
            out: Outbox::new(),
        }
    }

    /// The wrapped endpoint (e.g. to read negotiated capabilities after a
    /// run — note agents are moved into the simulator, so this is mostly
    /// useful in tests that drive the adapter by hand).
    pub fn endpoint(&self) -> &E {
        &self.ep
    }

    fn flush(&mut self, ctx: &mut Ctx) {
        while let Some(cmd) = self.out.poll_cmd() {
            match cmd {
                Command::Transmit(t) => ctx.send_new(t.flow, t.dst, t.wire_size, t.header),
                Command::SetTimer { at, token } => ctx.set_timer_at(at, token),
                Command::Deliver { flow, bytes } => ctx.stats.app_deliver(flow, bytes),
            }
        }
    }
}

impl<E: Endpoint> Agent for SimAgent<E> {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.out.now = ctx.now;
        self.ep.on_start(&mut self.out);
        self.flush(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: &Packet) {
        self.out.now = ctx.now;
        self.ep
            .handle_datagram(&mut self.out, pkt.wire_size, &pkt.header);
        self.flush(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        self.out.now = ctx.now;
        self.ep.on_timer(&mut self.out, token);
        self.flush(ctx);
    }
}

/// Number of token bits reserved for the endpoint slot on a [`SimHost`].
const SLOT_BITS: u32 = 8;
const SLOT_SHIFT: u32 = 64 - SLOT_BITS;
/// Endpoints one [`SimHost`] can carry (the slot index must fit the tag).
pub const MAX_HOST_ENDPOINTS: usize = 1 << SLOT_BITS;

/// A simulator agent hosting *several* endpoints on one node.
///
/// The simulator attaches one [`Agent`] per host node, which is exactly
/// right for the single-connection experiments but not for application
/// topologies where one machine terminates several connections (a chat
/// client that both sends requests and receives responses). `SimHost`
/// closes that gap mechanically:
///
/// * inbound packets are routed to the endpoint that registered the
///   packet's flow (others never see it — same as distinct hosts);
/// * timer tokens are tagged with the endpoint's slot index in the top
///   [`SLOT_BITS`] bits on the way out and untagged on the way back, so
///   endpoints keep their private token namespaces ([`TimerGens`]
///   generations stay far below the tag boundary in any finite run);
/// * `on_start` runs in registration order, preserving the deterministic
///   packet-uid / timer-insertion ordering the [`SimAgent`] contract
///   guarantees for a single endpoint.
///
/// [`TimerGens`]: crate::driver::TimerGens
#[derive(Default)]
pub struct SimHost {
    slots: Vec<(Box<dyn Endpoint>, Outbox)>,
    route: HashMap<FlowId, usize>,
}

impl SimHost {
    /// An empty host; add endpoints with [`SimHost::add`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an endpoint together with the flows it *receives* (a
    /// sender listens on its feedback flow, a receiver on its data flow).
    pub fn add(&mut self, ep: impl Endpoint + 'static, inbound: impl IntoIterator<Item = FlowId>) {
        let idx = self.slots.len();
        assert!(idx < MAX_HOST_ENDPOINTS, "SimHost slot tag overflow");
        for flow in inbound {
            let prev = self.route.insert(flow, idx);
            assert!(prev.is_none(), "flow routed to two endpoints on one host");
        }
        self.slots.push((Box::new(ep), Outbox::new()));
    }

    /// Endpoints registered so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no endpoint has been registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn flush_slot(&mut self, ctx: &mut Ctx, idx: usize) {
        let (_, out) = &mut self.slots[idx];
        while let Some(cmd) = out.poll_cmd() {
            match cmd {
                Command::Transmit(t) => ctx.send_new(t.flow, t.dst, t.wire_size, t.header),
                Command::SetTimer { at, token } => {
                    debug_assert_eq!(token >> SLOT_SHIFT, 0, "timer token reached the slot tag");
                    ctx.set_timer_at(at, ((idx as u64) << SLOT_SHIFT) | token);
                }
                Command::Deliver { flow, bytes } => ctx.stats.app_deliver(flow, bytes),
            }
        }
    }
}

impl Agent for SimHost {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for idx in 0..self.slots.len() {
            let (ep, out) = &mut self.slots[idx];
            out.now = ctx.now;
            ep.on_start(out);
            self.flush_slot(ctx, idx);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: &Packet) {
        let Some(&idx) = self.route.get(&pkt.flow) else {
            return;
        };
        let (ep, out) = &mut self.slots[idx];
        out.now = ctx.now;
        ep.handle_datagram(out, pkt.wire_size, &pkt.header);
        self.flush_slot(ctx, idx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        let idx = (token >> SLOT_SHIFT) as usize;
        if idx >= self.slots.len() {
            return;
        }
        let (ep, out) = &mut self.slots[idx];
        out.now = ctx.now;
        ep.on_timer(out, token & ((1u64 << SLOT_SHIFT) - 1));
        self.flush_slot(ctx, idx);
    }
}
