//! Deprecated pre-session wiring helpers.
//!
//! Before the [`session`](crate::session) layer existed, experiments wired
//! endpoints up with these free functions. They remain as thin shims over
//! the session layer so external code keeps compiling, but everything
//! in-tree builds with `-D deprecated` and uses
//! [`Profile`](crate::session::Profile) /
//! [`ConnectionPlan`](crate::session::ConnectionPlan) /
//! [`attach_pair`](crate::session::attach_pair) instead.

use qtp_simnet::prelude::*;
use qtp_simnet::sim::Simulator;
use std::time::Duration;

use crate::adapter::SimAgent;
use crate::caps::CapabilitySet;
use crate::probe::Probe;
use crate::receiver::{QtpReceiver, QtpReceiverConfig};
use crate::sender::{AppModel, QtpSender, QtpSenderConfig};

/// Everything an experiment needs to observe one QTP connection.
#[derive(Debug, Clone)]
pub struct QtpHandles {
    /// Flow id of the data direction (throughput/goodput accounting).
    pub data_flow: FlowId,
    /// Flow id of the feedback direction.
    pub fb_flow: FlowId,
    /// Sender-side probe.
    pub tx: Probe,
    /// Receiver-side probe.
    pub rx: Probe,
}

/// Attach a QTP sender at `sender_node` and receiver at `receiver_node`.
///
/// Registers two flows (`<name>` for data, `<name>-fb` for feedback) and
/// returns the probes for post-run inspection.
#[deprecated(
    since = "0.5.0",
    note = "use qtp_core::session::attach_pair with a ConnectionPlan"
)]
pub fn attach_qtp(
    sim: &mut Simulator,
    sender_node: NodeId,
    receiver_node: NodeId,
    name: &str,
    sender_cfg: QtpSenderConfig,
    receiver_cfg: QtpReceiverConfig,
) -> QtpHandles {
    let data_flow = sim.register_flow(name);
    let fb_flow = sim.register_flow(&format!("{name}-fb"));
    let tx = Probe::new();
    let rx = Probe::new();
    sim.attach_agent(
        sender_node,
        Box::new(SimAgent::new(QtpSender::new(
            data_flow,
            receiver_node,
            sender_cfg,
            tx.clone(),
        ))),
    );
    sim.attach_agent(
        receiver_node,
        Box::new(SimAgent::new(QtpReceiver::new(
            data_flow,
            fb_flow,
            sender_node,
            receiver_cfg,
            rx.clone(),
        ))),
    );
    QtpHandles {
        data_flow,
        fb_flow,
        tx,
        rx,
    }
}

/// Sender configuration for **QTPAF**: gTFRC with target `g`, full
/// reliability, receiver-side loss estimation (paper §4).
#[deprecated(since = "0.5.0", note = "use qtp_core::session::Profile::qtp_af")]
pub fn qtp_af_sender(g: Rate) -> QtpSenderConfig {
    QtpSenderConfig::new(CapabilitySet::qtp_af(g))
}

/// Sender configuration for **QTPlight**: sender-side loss estimation, no
/// retransmission (paper §3).
#[deprecated(since = "0.5.0", note = "use qtp_core::session::Profile::qtp_light")]
pub fn qtp_light_sender() -> QtpSenderConfig {
    QtpSenderConfig::new(CapabilitySet::qtp_light())
}

/// QTPlight with TTL-bounded partial reliability (the selective
/// retransmission by-product the paper highlights).
#[deprecated(
    since = "0.5.0",
    note = "use qtp_core::session::Profile::qtp_light_partial"
)]
pub fn qtp_light_partial_sender(ttl: Duration) -> QtpSenderConfig {
    QtpSenderConfig::new(CapabilitySet::qtp_light_partial(ttl))
}

/// Standard TFRC instance (receiver-side estimation, unreliable) — the
/// baseline both QTP instances are compared against.
#[deprecated(since = "0.5.0", note = "use qtp_core::session::Profile::tfrc")]
pub fn qtp_standard_sender() -> QtpSenderConfig {
    QtpSenderConfig::new(CapabilitySet::tfrc_standard())
}

/// A media-like application model: `rate` worth of 1-packet ADUs.
#[deprecated(since = "0.5.0", note = "use qtp_core::AppModel::cbr")]
pub fn cbr_app(rate: Rate) -> AppModel {
    AppModel::cbr(rate)
}
