//! The transport-neutral driver seam: sans-io endpoints behind a
//! command-queue API.
//!
//! The QTP endpoints ([`QtpSender`](crate::QtpSender) /
//! [`QtpReceiver`](crate::QtpReceiver)) are pure state machines: they are
//! *driven* by datagram arrivals and timer expiries and *emit* effects —
//! datagrams to transmit, timers to arm, application deliveries — without
//! ever touching a clock, a socket, or the simulator. This module defines
//! that seam:
//!
//! * [`Endpoint`] — the driver-facing trait: `on_start` / `handle_datagram`
//!   / `on_timer`, each receiving the current time through an [`Outbox`];
//! * [`Outbox`] — the buffered command queue an endpoint writes effects
//!   into; the driver drains it with [`Outbox::poll_cmd`] after every
//!   callback (quinn-style `poll_transmit`/`poll_timeout` drivers are a
//!   straightforward `match` over the drained [`Command`]s);
//! * [`TimerGens`] — the generation-counter helper that makes
//!   fire-and-forget timers cancellable in effect.
//!
//! Two drivers exist today: [`SimAgent`](crate::adapter::SimAgent) adapts an
//! endpoint to the discrete-event simulator's `Agent` interface, and
//! `qtp-io`'s `UdpDriver` runs one over a real `std::net::UdpSocket` with a
//! monotonic wall clock mapped onto [`SimTime`].
//!
//! # Command ordering
//!
//! [`Outbox`] is strictly FIFO across *all* command kinds. Drivers must
//! apply commands in the drained order: the simulator adapter relies on this
//! for byte-identical replay of pre-seam behaviour (send and timer commands
//! schedule events whose tie-break is insertion order).

use qtp_simnet::packet::{FlowId, NodeId};
use qtp_simnet::time::SimTime;
use std::collections::VecDeque;

/// An outgoing datagram, addressed by flow and destination endpoint id.
///
/// `wire_size` is the *accounted* on-wire size (transport header + payload +
/// IP overhead). The simulated payload is never materialized — `header`
/// holds only the encoded transport header — so real-socket drivers frame
/// `(flow, wire_size, header)` explicitly (see `qtp-io`'s datagram frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transmit {
    /// Flow the datagram belongs to.
    pub flow: FlowId,
    /// Destination endpoint (a node id in the simulator; drivers over real
    /// sockets map every id onto the connected peer).
    pub dst: NodeId,
    /// Accounted on-wire size in bytes.
    pub wire_size: u32,
    /// Encoded transport header.
    pub header: Vec<u8>,
}

/// One buffered effect emitted by an endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Transmit a datagram.
    Transmit(Transmit),
    /// Arm a fire-and-forget timer: wake the endpoint at `at` with `token`.
    /// Timers cannot be cancelled — endpoints filter stale tokens with
    /// [`TimerGens`].
    SetTimer { at: SimTime, token: u64 },
    /// `bytes` of application payload became deliverable on `flow`.
    Deliver { flow: FlowId, bytes: u64 },
}

/// The buffered command queue handed to every [`Endpoint`] callback.
///
/// Carries the current time (`now`) in, and the endpoint's effects out.
/// Effects are applied by the driver *after* the callback returns, exactly
/// in emission order.
#[derive(Debug, Default)]
pub struct Outbox {
    /// Current time as supplied by the driver (virtual time in the
    /// simulator; monotonic wall time since driver start over real I/O).
    pub now: SimTime,
    cmds: VecDeque<Command>,
}

impl Outbox {
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queue a datagram for transmission.
    pub fn send_new(&mut self, flow: FlowId, dst: NodeId, wire_size: u32, header: Vec<u8>) {
        self.cmds.push_back(Command::Transmit(Transmit {
            flow,
            dst,
            wire_size,
            header,
        }));
    }

    /// Arm a wakeup at an absolute time.
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        self.cmds.push_back(Command::SetTimer { at, token });
    }

    /// Report application-level delivery of `bytes` on `flow`.
    pub fn app_deliver(&mut self, flow: FlowId, bytes: u64) {
        self.cmds.push_back(Command::Deliver { flow, bytes });
    }

    /// Drain the next buffered command (FIFO).
    pub fn poll_cmd(&mut self) -> Option<Command> {
        self.cmds.pop_front()
    }

    /// Whether any commands are pending.
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }
}

/// A sans-io transport endpoint drivable by any event loop.
///
/// The driver contract:
///
/// 1. set `out.now` to the current time before every callback;
/// 2. call [`Endpoint::on_start`] exactly once, first;
/// 3. feed every arriving datagram to [`Endpoint::handle_datagram`] and
///    every armed timer (at or after its deadline) to
///    [`Endpoint::on_timer`];
/// 4. after each callback, drain the outbox with [`Outbox::poll_cmd`] and
///    apply the commands in order.
pub trait Endpoint {
    /// Called once when the connection/driver starts.
    fn on_start(&mut self, _out: &mut Outbox) {}

    /// A datagram arrived. `wire_size` is the accounted on-wire size and
    /// `header` the encoded transport header (see [`Transmit`]).
    fn handle_datagram(&mut self, _out: &mut Outbox, _wire_size: u32, _header: &[u8]) {}

    /// A timer armed via [`Outbox::set_timer_at`] fired. `token` is the
    /// value given when arming; stale generations must be ignored (see
    /// [`TimerGens`]).
    fn on_timer(&mut self, _out: &mut Outbox, _token: u64) {}
}

/// Boxed endpoints forward the whole seam, so drivers that multiplex many
/// connections of different concrete types over one socket (`qtp-io`'s
/// `MuxDriver<Box<dyn Endpoint>>`) can mix senders and receivers freely.
impl<E: Endpoint + ?Sized> Endpoint for Box<E> {
    fn on_start(&mut self, out: &mut Outbox) {
        (**self).on_start(out)
    }

    fn handle_datagram(&mut self, out: &mut Outbox, wire_size: u32, header: &[u8]) {
        (**self).handle_datagram(out, wire_size, header)
    }

    fn on_timer(&mut self, out: &mut Outbox, token: u64) {
        (**self).on_timer(out, token)
    }
}

/// Number of low token bits reserved for the timer kind.
const KIND_BITS: u32 = 2;
const KIND_MASK: u64 = (1 << KIND_BITS) - 1;

/// Generation counters for fire-and-forget timers, shared by both QTP
/// endpoints.
///
/// Timers in this codebase cannot be cancelled once armed (see the timer
/// contract in `qtp-simnet`'s `sim` module: `set_timer_in(d, token)`
/// schedules a wakeup that always fires). Re-arming therefore works by
/// *generation*: each timer kind `k < N` carries a counter, [`arm`] bumps it
/// and encodes `kind | (gen << 2)` into the token, and [`live`] accepts a
/// fired token only if its generation is still current. A stale token —
/// from a wakeup superseded by a later re-arm — decodes to `None` and the
/// endpoint ignores it.
///
/// `N` is the number of timer kinds (at most 4 with the 2-bit kind field).
/// Tokens whose kind is `>= N` are never live, so an endpoint with a single
/// timer kind cheaply rejects foreign tokens too.
///
/// [`arm`]: TimerGens::arm
/// [`live`]: TimerGens::live
#[derive(Debug, Clone)]
pub struct TimerGens<const N: usize> {
    gens: [u64; N],
}

impl<const N: usize> Default for TimerGens<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> TimerGens<N> {
    /// Compile-time bound: the kind field is 2 bits wide.
    const VALID_N: () = assert!(N >= 1 && N <= 1 << KIND_BITS, "at most 4 timer kinds");

    pub fn new() -> Self {
        #[allow(clippy::let_unit_value)]
        let () = Self::VALID_N;
        TimerGens { gens: [0; N] }
    }

    /// Start a new generation for `kind` and return the token to arm the
    /// timer with. All previously issued tokens of this kind become stale.
    pub fn arm(&mut self, kind: u64) -> u64 {
        self.gens[kind as usize] += 1;
        kind | (self.gens[kind as usize] << KIND_BITS)
    }

    /// Decode a fired token: `Some(kind)` if it is the current generation
    /// for a known kind, `None` if stale or foreign.
    pub fn live(&self, token: u64) -> Option<u64> {
        let kind = token & KIND_MASK;
        let gen = token >> KIND_BITS;
        ((kind as usize) < N && gen == self.gens[kind as usize]).then_some(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_drains_fifo_across_kinds() {
        let mut out = Outbox::new();
        out.send_new(1, 2, 100, vec![0xAA]);
        out.set_timer_at(SimTime::from_millis(5), 42);
        out.app_deliver(1, 1000);
        out.send_new(1, 2, 50, vec![0xBB]);
        assert!(matches!(out.poll_cmd(), Some(Command::Transmit(t)) if t.header == vec![0xAA]));
        assert!(matches!(
            out.poll_cmd(),
            Some(Command::SetTimer { token: 42, .. })
        ));
        assert!(matches!(
            out.poll_cmd(),
            Some(Command::Deliver { bytes: 1000, .. })
        ));
        assert!(matches!(out.poll_cmd(), Some(Command::Transmit(t)) if t.header == vec![0xBB]));
        assert!(out.poll_cmd().is_none());
        assert!(out.is_empty());
    }

    #[test]
    fn boxed_endpoints_forward_the_seam() {
        struct Recorder;
        impl Endpoint for Recorder {
            fn on_start(&mut self, out: &mut Outbox) {
                out.send_new(1, 0, 10, vec![0xAB]);
            }
            fn handle_datagram(&mut self, out: &mut Outbox, wire_size: u32, _header: &[u8]) {
                out.app_deliver(1, wire_size as u64);
            }
            fn on_timer(&mut self, out: &mut Outbox, token: u64) {
                out.set_timer_at(out.now, token);
            }
        }
        let mut boxed: Box<dyn Endpoint> = Box::new(Recorder);
        let mut out = Outbox::new();
        boxed.on_start(&mut out);
        boxed.handle_datagram(&mut out, 100, &[1, 2]);
        boxed.on_timer(&mut out, 7);
        assert!(matches!(out.poll_cmd(), Some(Command::Transmit(_))));
        assert!(matches!(
            out.poll_cmd(),
            Some(Command::Deliver { bytes: 100, .. })
        ));
        assert!(matches!(
            out.poll_cmd(),
            Some(Command::SetTimer { token: 7, .. })
        ));
        assert!(out.poll_cmd().is_none());
    }

    #[test]
    fn timer_gens_invalidate_stale_tokens() {
        let mut g: TimerGens<4> = TimerGens::new();
        let t1 = g.arm(3);
        assert_eq!(g.live(t1), Some(3));
        let t2 = g.arm(3);
        assert_eq!(g.live(t1), None, "superseded token is stale");
        assert_eq!(g.live(t2), Some(3));
        // Other kinds are independent.
        let u = g.arm(0);
        assert_eq!(g.live(u), Some(0));
        assert_eq!(g.live(t2), Some(3));
    }

    #[test]
    fn timer_gens_reject_foreign_kinds() {
        let mut g: TimerGens<1> = TimerGens::new();
        let t = g.arm(0);
        assert_eq!(g.live(t), Some(0));
        // A token whose kind field is out of range is never live, whatever
        // its generation.
        for kind in 1..4u64 {
            assert_eq!(g.live(kind | (1 << 2)), None);
            assert_eq!(g.live(kind), None);
        }
    }

    #[test]
    fn token_layout_matches_legacy_encoding() {
        // Endpoints previously hand-rolled `kind | (gen << 2)`; the helper
        // must keep that exact layout so fixed-seed traces stay identical.
        let mut g: TimerGens<4> = TimerGens::new();
        assert_eq!(g.arm(1), 1 | (1 << 2));
        assert_eq!(g.arm(1), 1 | (2 << 2));
        assert_eq!(g.arm(2), 2 | (1 << 2));
    }
}
