//! End-to-end tests of the composed QTP endpoints over simulated networks.

use qtp_core::session::{attach_pair, ConnectionPlan, Profile};
use qtp_core::*;
use qtp_simnet::prelude::*;
use qtp_simnet::sim::Simulator;
use std::time::Duration;

/// Two hosts joined by a duplex link with the given forward-path properties.
fn two_hosts(
    rate: Rate,
    delay: Duration,
    loss: LossModel,
    queue: QueueConfig,
    seed: u64,
) -> (Simulator, NodeId, NodeId) {
    let mut b = NetworkBuilder::new();
    let s = b.host();
    let r = b.host();
    b.simplex_link(
        s,
        r,
        LinkConfig::new(rate, delay)
            .with_loss(loss)
            .with_queue(queue),
    );
    b.simplex_link(r, s, LinkConfig::new(rate, delay));
    (b.build(seed), s, r)
}

fn goodput_bps(sim: &Simulator, flow: FlowId, secs: u64) -> f64 {
    sim.stats()
        .flow(flow)
        .goodput_bps(Duration::from_secs(secs))
}

#[test]
fn handshake_negotiates_offered_profile() {
    let (mut sim, s, r) = two_hosts(
        Rate::from_mbps(10),
        Duration::from_millis(10),
        LossModel::None,
        QueueConfig::DropTailPkts(100),
        1,
    );
    let h = attach_pair(
        &mut sim,
        s,
        r,
        "conn",
        &ConnectionPlan::new(Profile::qtp_light()),
    );
    sim.run_until(SimTime::from_secs(2));
    // Data flowed, so the handshake happened.
    assert!(sim.stats().flow(h.data_flow).pkts_arrived > 10);
    assert!(h.rx.read(|d| d.rx_feedback_sent) > 0);
}

#[test]
fn loss_free_path_ramps_to_fill_bottleneck() {
    let (mut sim, s, r) = two_hosts(
        Rate::from_mbps(2),
        Duration::from_millis(20),
        LossModel::None,
        QueueConfig::DropTailPkts(100),
        2,
    );
    let h = attach_pair(
        &mut sim,
        s,
        r,
        "tfrc",
        &ConnectionPlan::new(Profile::tfrc()),
    );
    sim.run_until(SimTime::from_secs(30));
    let bps = goodput_bps(&sim, h.data_flow, 30);
    // TFRC should reach a large fraction of the 2 Mbit/s bottleneck
    // (headers cost ~5%, drops at the queue regulate the rest).
    assert!(bps > 1_200_000.0, "goodput too low: {bps}");
}

#[test]
fn tfrc_rate_tracks_equation_under_bernoulli_loss() {
    // At p=2%, RTT~42 ms, s=1000 B the equation predicts a specific rate;
    // the closed loop should land within a factor ~2 of it (measurement
    // noise, loss-event-vs-packet-loss difference).
    let (mut sim, s, r) = two_hosts(
        Rate::from_mbps(50), // not the constraint
        Duration::from_millis(20),
        LossModel::bernoulli(0.02),
        QueueConfig::DropTailPkts(1000),
        3,
    );
    let h = attach_pair(
        &mut sim,
        s,
        r,
        "tfrc",
        &ConnectionPlan::new(Profile::tfrc()),
    );
    sim.run_until(SimTime::from_secs(60));
    let measured = goodput_bps(&sim, h.data_flow, 60);
    let rtt = Duration::from_millis(42); // 2*20ms prop + ~queueing/tx
    let predicted = qtp_tfrc::throughput(1000, rtt, 0.02) * 8.0;
    let ratio = measured / predicted;
    assert!(
        (0.4..2.5).contains(&ratio),
        "measured {measured:.0} vs predicted {predicted:.0} (ratio {ratio:.2})"
    );
}

#[test]
fn qtplight_matches_standard_tfrc_rate() {
    // The E4 claim: moving the estimation to the sender does not change the
    // rate behaviour materially.
    fn run(profile: Profile, seed: u64) -> f64 {
        let (mut sim, s, r) = two_hosts(
            Rate::from_mbps(50),
            Duration::from_millis(30),
            LossModel::bernoulli(0.01),
            QueueConfig::DropTailPkts(1000),
            seed,
        );
        let h = attach_pair(&mut sim, s, r, "x", &ConnectionPlan::new(profile));
        sim.run_until(SimTime::from_secs(60));
        goodput_bps(&sim, h.data_flow, 60)
    }
    let standard = run(Profile::tfrc(), 4);
    let light = run(Profile::qtp_light(), 4);
    let ratio = light / standard;
    assert!(
        (0.6..1.67).contains(&ratio),
        "standard={standard:.0}, light={light:.0}, ratio={ratio:.2}"
    );
}

#[test]
fn qtp_af_full_reliability_delivers_everything() {
    let (mut sim, s, r) = two_hosts(
        Rate::from_mbps(5),
        Duration::from_millis(10),
        LossModel::bernoulli(0.03),
        QueueConfig::DropTailPkts(200),
        5,
    );
    let plan = ConnectionPlan::new(Profile::qtp_af(Rate::from_mbps(1))).finite(1000);
    let h = attach_pair(&mut sim, s, r, "af", &plan);
    sim.run_until(SimTime::from_secs(120));
    assert_eq!(
        sim.stats().flow(h.data_flow).bytes_app_delivered,
        1000 * 1000,
        "every byte must arrive despite 3% loss"
    );
    assert!(h.tx.read(|d| d.tx_retransmissions) > 0, "loss implies retx");
}

#[test]
fn partial_ttl_abandons_stale_data_and_keeps_flowing() {
    let (mut sim, s, r) = two_hosts(
        Rate::from_mbps(5),
        Duration::from_millis(30),
        LossModel::bernoulli(0.05),
        QueueConfig::DropTailPkts(200),
        6,
    );
    // TTL shorter than a retransmission round trip: most losses expire.
    let plan = ConnectionPlan::new(
        Profile::qtp_light_partial(Duration::from_millis(50)).expect("nonzero TTL"),
    );
    let h = attach_pair(&mut sim, s, r, "pttl", &plan);
    sim.run_until(SimTime::from_secs(30));
    let d = h.tx.snapshot();
    assert!(d.tx_abandoned > 0, "stale losses must be abandoned");
    // Goodput continues (receiver is moved past holes by FWD).
    assert!(
        sim.stats().flow(h.data_flow).bytes_app_delivered > 1_000_000,
        "delivered={}",
        sim.stats().flow(h.data_flow).bytes_app_delivered
    );
}

#[test]
fn selfish_receiver_cheats_standard_tfrc_but_not_qtplight() {
    // E6: a receiver that divides its reported p by 10 inflates a standard
    // TFRC sender's rate; under QTPlight there is no p to falsify.
    fn run(profile: Profile, selfish: f64, seed: u64) -> f64 {
        let (mut sim, s, r) = two_hosts(
            Rate::from_mbps(50),
            Duration::from_millis(30),
            LossModel::bernoulli(0.02),
            QueueConfig::DropTailPkts(1000),
            seed,
        );
        let plan = ConnectionPlan::new(profile).selfish_factor(selfish);
        let h = attach_pair(&mut sim, s, r, "x", &plan);
        sim.run_until(SimTime::from_secs(60));
        // Selfishness inflates the *send* rate; measure at the network.
        sim.stats()
            .flow(h.data_flow)
            .throughput_bps(Duration::from_secs(60))
    }
    let honest_std = run(Profile::tfrc(), 1.0, 7);
    let cheat_std = run(Profile::tfrc(), 10.0, 7);
    let honest_light = run(Profile::qtp_light(), 1.0, 7);
    let cheat_light = run(Profile::qtp_light(), 10.0, 7);
    assert!(
        cheat_std > honest_std * 1.5,
        "standard TFRC must be cheatable: honest={honest_std:.0}, cheat={cheat_std:.0}"
    );
    let light_ratio = cheat_light / honest_light;
    assert!(
        light_ratio < 1.25,
        "QTPlight must be (nearly) immune: ratio={light_ratio:.2}"
    );
}

#[test]
fn qtplight_receiver_is_dramatically_cheaper() {
    // E5 in test form: ops/packet at the receiver.
    fn run(profile: Profile, seed: u64) -> (f64, usize) {
        let (mut sim, s, r) = two_hosts(
            Rate::from_mbps(10),
            Duration::from_millis(20),
            LossModel::bernoulli(0.02),
            QueueConfig::DropTailPkts(500),
            seed,
        );
        let h = attach_pair(&mut sim, s, r, "x", &ConnectionPlan::new(profile));
        sim.run_until(SimTime::from_secs(30));
        (
            h.rx.read(|d| d.rx_ops_per_packet()),
            h.rx.read(|d| d.rx_state_bytes_peak),
        )
    }
    let (std_ops, std_state) = run(Profile::tfrc(), 8);
    let (light_ops, light_state) = run(Profile::qtp_light(), 8);
    assert!(
        std_ops > 2.0 * light_ops,
        "standard receiver ops/pkt {std_ops:.1} should dwarf QTPlight {light_ops:.1}"
    );
    assert!(
        std_state > light_state,
        "state bytes: std={std_state}, light={light_state}"
    );
}

#[test]
fn server_policy_downgrade_is_respected_end_to_end() {
    let (mut sim, s, r) = two_hosts(
        Rate::from_mbps(10),
        Duration::from_millis(10),
        LossModel::None,
        QueueConfig::DropTailPkts(100),
        9,
    );
    // Offer QTPlight; server refuses sender-side estimation.
    let plan = ConnectionPlan::new(Profile::qtp_light()).policy(ServerPolicy {
        allow_sender_loss: false,
        ..ServerPolicy::default()
    });
    let h = attach_pair(&mut sim, s, r, "downgrade", &plan);
    sim.run_until(SimTime::from_secs(5));
    // The connection still works (data flows, feedback arrives with p).
    assert!(sim.stats().flow(h.data_flow).pkts_arrived > 50);
    assert!(h.rx.read(|d| d.rx_feedback_sent) > 0);
    // And the receiver load is the heavy profile (ops/pkt well above the
    // light receiver's ~10).
    assert!(h.rx.read(|d| d.rx_ops_per_packet()) > 10.0);
}

#[test]
fn gtfrc_holds_target_under_loss_where_tfrc_collapses() {
    // Micro-version of E2/E3 without the AF network: pure Bernoulli loss.
    // gTFRC with a 2 Mbit/s target must hold it; plain TFRC collapses to
    // the equation rate.
    fn run(profile: Profile, seed: u64) -> f64 {
        let (mut sim, s, r) = two_hosts(
            Rate::from_mbps(10),
            Duration::from_millis(50),
            LossModel::bernoulli(0.05),
            QueueConfig::DropTailPkts(500),
            seed,
        );
        let h = attach_pair(&mut sim, s, r, "x", &ConnectionPlan::new(profile));
        sim.run_until(SimTime::from_secs(40));
        sim.stats()
            .flow(h.data_flow)
            .throughput_bps(Duration::from_secs(40))
    }
    let tfrc = run(Profile::tfrc(), 10);
    let gtfrc = run(Profile::qtp_af(Rate::from_mbps(2)), 10);
    assert!(
        tfrc < 1_500_000.0,
        "plain TFRC should collapse under 5% loss at 100ms RTT: {tfrc:.0}"
    );
    assert!(
        gtfrc > 1_800_000.0,
        "gTFRC must hold ~the 2 Mbit/s target: {gtfrc:.0}"
    );
}

#[test]
fn negotiated_mode_reported_by_handles() {
    // Capability negotiation outcome is visible in wire traffic; spot-check
    // via the reliability distinction: with reliability None no FWD is
    // needed on a clean path and no retransmissions ever happen.
    let (mut sim, s, r) = two_hosts(
        Rate::from_mbps(10),
        Duration::from_millis(10),
        LossModel::None,
        QueueConfig::DropTailPkts(100),
        11,
    );
    let h = attach_pair(
        &mut sim,
        s,
        r,
        "clean",
        &ConnectionPlan::new(Profile::qtp_light()),
    );
    sim.run_until(SimTime::from_secs(10));
    assert_eq!(h.tx.read(|d| d.tx_retransmissions), 0);
    assert_eq!(h.tx.read(|d| d.tx_abandoned), 0);
    // Goodput equals network throughput minus header overhead (unreliable
    // mode delivers everything that arrives).
    let f = sim.stats().flow(h.data_flow);
    assert!(f.bytes_app_delivered > 0);
    assert!(f.bytes_app_delivered <= f.bytes_arrived);
}

#[test]
fn deterministic_across_runs() {
    fn run() -> (u64, u64, f64) {
        let (mut sim, s, r) = two_hosts(
            Rate::from_mbps(5),
            Duration::from_millis(20),
            LossModel::bernoulli(0.02),
            QueueConfig::DropTailPkts(100),
            42,
        );
        let h = attach_pair(
            &mut sim,
            s,
            r,
            "det",
            &ConnectionPlan::new(Profile::qtp_light()),
        );
        sim.run_until(SimTime::from_secs(20));
        let f = sim.stats().flow(h.data_flow);
        (
            f.pkts_arrived,
            f.bytes_app_delivered,
            h.tx.read(|d| d.rate_trace.last().map(|(_, r)| *r).unwrap_or(0.0)),
        )
    }
    assert_eq!(run(), run());
}
