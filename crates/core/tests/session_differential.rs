//! The behaviour-preservation proof for the session-API redesign: for a
//! fixed seed, wiring a connection through the new session layer
//! ([`attach_pair`]) replays **byte-identically** to the legacy
//! [`attach_qtp`] free-function wiring — same per-flow statistics, same
//! endpoint-internal measurements — on a stochastic (lossy, RED-queued)
//! scenario that exercises retransmission, feedback and timers.
//!
//! A `SimAgent<Session>` passes endpoint commands through unchanged and
//! in order, so the simulation's event sequence cannot tell the two
//! wirings apart. This test is what lets the rest of the tree migrate to
//! the session API without touching the committed claims ledger.

#![allow(deprecated)] // the legacy side of the differential is the point

use qtp_core::session::{attach_pair, ConnectionPlan, Profile, SessionEvent, SessionEvents};
use qtp_core::{attach_qtp, Probe, QtpReceiverConfig, QtpSenderConfig};
use qtp_simnet::prelude::*;
use std::time::Duration;

/// One fixed-seed lossy scenario: wire a connection, run 30 virtual
/// seconds, then render flow stats and probe snapshots for comparison.
/// Probes are snapshotted strictly *after* the run.
fn scenario(
    seed: u64,
    wire: impl FnOnce(&mut qtp_simnet::sim::Simulator) -> (u32, Probe, Probe, Option<SessionEvents>),
) -> (String, Option<Vec<SessionEvent>>) {
    let mut b = NetworkBuilder::new();
    let s = b.host();
    let r = b.host();
    b.simplex_link(
        s,
        r,
        LinkConfig::new(Rate::from_mbps(5), Duration::from_millis(25))
            .with_loss(LossModel::bernoulli(0.02))
            .with_queue(QueueConfig::Red(RedParams::default())),
    );
    b.simplex_link(
        r,
        s,
        LinkConfig::new(Rate::from_mbps(5), Duration::from_millis(25)),
    );
    let mut sim = b.build(seed);
    let (data_flow, tx, rx, events) = wire(&mut sim);
    sim.run_until(SimTime::from_secs(30));
    let rendered = format!(
        "flow={:?}\nfb={:?}\ntx={:?}\nrx={:?}",
        sim.stats().flow(data_flow),
        sim.stats().flow(data_flow + 1),
        tx.snapshot(),
        rx.snapshot(),
    );
    (rendered, events.map(|e| e.drain()))
}

fn differential(profile: Profile, legacy_cfg: QtpSenderConfig) {
    for seed in [7u64, 42] {
        let (legacy, _) = scenario(seed, |sim| {
            let h = attach_qtp(
                sim,
                0,
                1,
                "diff",
                legacy_cfg.clone(),
                QtpReceiverConfig::default(),
            );
            (h.data_flow, h.tx, h.rx, None)
        });
        let (session, events) = scenario(seed, |sim| {
            let plan = ConnectionPlan::new(profile)
                .app(legacy_cfg.app.clone())
                .payload(legacy_cfg.s);
            let h = attach_pair(sim, 0, 1, "diff", &plan);
            (h.data_flow, h.tx, h.rx, Some(h.tx_events))
        });
        assert_eq!(
            legacy, session,
            "seed {seed}: session wiring must replay the legacy wiring byte-identically"
        );
        // The session layer adds typed events on top of identical
        // behaviour; negotiation must have been observed.
        assert!(
            events
                .unwrap()
                .iter()
                .any(|e| matches!(e, SessionEvent::Connected { .. })),
            "seed {seed}: sender session observed Connected"
        );
    }
}

#[test]
fn qtpaf_session_wiring_matches_legacy_byte_for_byte() {
    let mut cfg = QtpSenderConfig::new(qtp_core::CapabilitySet::qtp_af(Rate::from_mbps(1)));
    cfg.app = qtp_core::AppModel::Finite { packets: 500 };
    differential(Profile::qtp_af(Rate::from_mbps(1)), cfg);
}

#[test]
fn qtplight_session_wiring_matches_legacy_byte_for_byte() {
    let cfg = QtpSenderConfig::new(qtp_core::CapabilitySet::qtp_light());
    differential(Profile::qtp_light(), cfg);
}

#[test]
fn ttl_partial_session_wiring_matches_legacy_byte_for_byte() {
    let ttl = Duration::from_millis(120);
    let cfg = QtpSenderConfig::new(qtp_core::CapabilitySet::qtp_light_partial(ttl));
    differential(Profile::qtp_light_partial(ttl).expect("nonzero TTL"), cfg);
}
