//! Property tests for [`TimerGens`] cancellation/regeneration semantics
//! under many interleaved flows — the contract the connection mux leans
//! on: timers are fire-and-forget at the driver (nothing is ever
//! cancelled in the wheel), so *correct stale-token filtering at the
//! endpoint is the only thing standing between a re-armed timer and a
//! double fire*.
//!
//! The model: a pool of flows, each owning an independent `TimerGens<4>`,
//! with arming operations interleaved arbitrarily across flows and kinds
//! (exactly what the mux produces when many connections share one wheel).

use proptest::prelude::*;
use qtp_core::TimerGens;

const FLOWS: usize = 8;
const KINDS: u64 = 4;

/// An arbitrary interleaving of arm operations across flows and kinds.
fn arb_ops() -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec((0usize..FLOWS, 0u64..KINDS), 1..200)
}

proptest! {
    #[test]
    fn only_the_latest_generation_per_flow_and_kind_is_live(ops in arb_ops()) {
        let mut gens: Vec<TimerGens<4>> = (0..FLOWS).map(|_| TimerGens::new()).collect();
        // Every token ever issued, tagged with its (flow, kind).
        let mut issued: Vec<(usize, u64, u64)> = Vec::new();
        // Latest token per (flow, kind).
        let mut latest = [[None::<u64>; KINDS as usize]; FLOWS];

        for (flow, kind) in ops {
            let token = gens[flow].arm(kind);
            issued.push((flow, kind, token));
            latest[flow][kind as usize] = Some(token);
        }

        for (flow, kind, token) in issued {
            let expect_live = latest[flow][kind as usize] == Some(token);
            prop_assert_eq!(
                gens[flow].live(token),
                expect_live.then_some(kind),
                "flow {} kind {} token {:#x}: exactly the latest generation is live",
                flow, kind, token
            );
        }
    }

    #[test]
    fn regeneration_is_permanent(ops in arb_ops(), kind in 0u64..KINDS) {
        // Once a token is superseded it stays stale through any further
        // interleaving of arms on any kind (no generation reuse).
        let mut g: TimerGens<4> = TimerGens::new();
        let stale = g.arm(kind);
        let fresh = g.arm(kind);
        prop_assert_eq!(g.live(stale), None);
        for (_, k) in ops {
            if k != kind {
                g.arm(k);
                prop_assert_eq!(g.live(fresh), Some(kind), "other kinds are independent");
            }
            prop_assert_eq!(g.live(stale), None, "superseded token never revives");
        }
    }

    #[test]
    fn foreign_kinds_are_never_live(ops in arb_ops(), token in any::<u64>()) {
        // An endpoint with fewer kinds rejects any token whose kind field
        // is out of range, whatever generation it claims.
        let mut g: TimerGens<2> = TimerGens::new();
        for (_, k) in ops {
            g.arm(k % 2);
        }
        if token & 0b11 >= 2 {
            prop_assert_eq!(g.live(token), None);
        }
    }

    #[test]
    fn tokens_are_unique_across_a_flow_history(ops in arb_ops()) {
        // No two arms on one flow ever hand out the same token — the
        // uniqueness the wheel's fire-and-forget delivery relies on.
        let mut gens: Vec<TimerGens<4>> = (0..FLOWS).map(|_| TimerGens::new()).collect();
        let mut seen: Vec<std::collections::BTreeSet<u64>> =
            (0..FLOWS).map(|_| Default::default()).collect();
        for (flow, kind) in ops {
            let token = gens[flow].arm(kind);
            prop_assert!(
                seen[flow].insert(token),
                "flow {} reissued token {:#x}", flow, token
            );
        }
    }
}
