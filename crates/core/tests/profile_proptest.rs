//! Property tests for the fluent profile layer: `Profile` ⇄
//! `CapabilitySet` is lossless across all three service axes for every
//! valid composition, the builder's validation is total (valid in ⇒ valid
//! out, invalid in ⇒ typed error), and capability wire decoding reports
//! the offending code.

use proptest::prelude::*;
use qtp_core::session::{Profile, ProfileError, Reliability};
use qtp_core::{caps, CapabilitySet, CapsError, CcKind, FeedbackMode};
use qtp_sack::ReliabilityMode;
use qtp_simnet::time::Rate;
use std::time::Duration;

fn arb_reliability() -> impl Strategy<Value = Reliability> {
    prop_oneof![
        Just(Reliability::None),
        Just(Reliability::Full),
        (1u64..10_000_000).prop_map(|us| Reliability::Ttl(Duration::from_micros(us))),
        (1u32..64).prop_map(Reliability::Budget),
    ]
}

fn arb_feedback() -> impl Strategy<Value = FeedbackMode> {
    prop_oneof![
        Just(FeedbackMode::ReceiverLoss),
        Just(FeedbackMode::SenderLoss)
    ]
}

fn arb_cc() -> impl Strategy<Value = CcKind> {
    prop_oneof![
        Just(CcKind::Tfrc),
        (0u64..2_000_000_000).prop_map(|bps| CcKind::Gtfrc {
            target: Rate::from_bps(bps)
        }),
        (1u64..2_000_000_000).prop_map(|bps| CcKind::Fixed {
            rate: Rate::from_bps(bps)
        }),
        Just(CcKind::Cubic),
        Just(CcKind::BbrLite),
    ]
}

proptest! {
    /// Every valid axis combination builds, and converts to a
    /// `CapabilitySet` and back without loss.
    #[test]
    fn profile_capability_roundtrip(
        rel in arb_reliability(),
        fb in arb_feedback(),
        cc in arb_cc(),
    ) {
        let profile = Profile::new()
            .reliability(rel)
            .feedback(fb)
            .cc(cc)
            .build()
            .expect("valid axes must build");
        // Axis accessors reflect the inputs.
        prop_assert_eq!(profile.reliability(), rel);
        prop_assert_eq!(profile.feedback(), fb);
        prop_assert_eq!(profile.cc(), cc);
        // Lossless down-conversion…
        let wire: CapabilitySet = profile.into();
        prop_assert_eq!(ReliabilityMode::from(rel), wire.reliability);
        // …and lossless up-conversion.
        let back = Profile::try_from(wire).expect("wire set came from a valid profile");
        prop_assert_eq!(back, profile);
    }

    /// Degenerate compositions are rejected with the matching typed error
    /// instead of panicking — whatever the other axes say.
    #[test]
    fn degenerate_profiles_yield_typed_errors(
        fb in arb_feedback(),
        cc in arb_cc(),
    ) {
        prop_assert_eq!(
            Profile::new().reliability(Reliability::Ttl(Duration::ZERO)).feedback(fb).cc(cc).build(),
            Err(ProfileError::ZeroTtl)
        );
        prop_assert_eq!(
            Profile::new().reliability(Reliability::Budget(0)).feedback(fb).cc(cc).build(),
            Err(ProfileError::ZeroRetxBudget)
        );
        prop_assert_eq!(
            Profile::new().feedback(fb).cc(CcKind::Fixed { rate: Rate::ZERO }).build(),
            Err(ProfileError::ZeroFixedRate)
        );
    }

    /// Capability wire decoding is total: known codes decode, unknown
    /// codes surface a `CapsError` carrying exactly the offending byte.
    #[test]
    fn caps_decode_errors_carry_the_wire_code(code in any::<u8>(), param in any::<u64>()) {
        match caps::reliability_from_wire(code, param) {
            Ok(_) => prop_assert!(code <= 3),
            Err(CapsError::BadReliability(c)) => prop_assert_eq!(c, code),
            Err(other) => prop_assert!(false, "wrong axis: {:?}", other),
        }
        match FeedbackMode::from_wire(code) {
            Ok(_) => prop_assert!(code <= 1),
            Err(CapsError::BadFeedback(c)) => prop_assert_eq!(c, code),
            Err(other) => prop_assert!(false, "wrong axis: {:?}", other),
        }
        match caps::cc_from_wire(code, param) {
            Ok(_) => prop_assert!(code <= 4),
            Err(CapsError::BadCc(c)) => prop_assert_eq!(c, code),
            Err(other) => prop_assert!(false, "wrong axis: {:?}", other),
        }
    }
}
