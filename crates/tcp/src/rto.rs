//! Retransmission timeout estimation (RFC 6298).
//!
//! Classic Jacobson/Karels: smoothed RTT and variance with 1/8 and 1/4
//! gains, `RTO = SRTT + 4·RTTVAR`, exponential backoff on timeout, reset on
//! a new RTT sample. Samples must come only from never-retransmitted
//! segments (Karn's rule) — the sender enforces that.

use std::time::Duration;

/// Lower bound for the RTO (RFC 6298 §2.4's 1-second floor). A smaller
/// floor causes spurious timeouts whenever a filling bottleneck queue grows
/// the RTT faster than the smoothed estimate tracks it.
pub const MIN_RTO: Duration = Duration::from_secs(1);

/// Upper bound for the RTO (RFC 6298 allows >= 60 s).
pub const MAX_RTO: Duration = Duration::from_secs(60);

/// RFC 6298 estimator state.
#[derive(Debug, Clone)]
pub struct RtoEstimator {
    srtt: Option<Duration>,
    rttvar: Duration,
    /// Current RTO including any backoff.
    rto: Duration,
    /// Number of consecutive timeouts (backoff exponent).
    backoffs: u32,
}

impl RtoEstimator {
    /// Initial RTO is 1 s (RFC 6298 §2.1 value, scaled-down floor aside).
    pub fn new() -> Self {
        RtoEstimator {
            srtt: None,
            rttvar: Duration::ZERO,
            rto: Duration::from_secs(1),
            backoffs: 0,
        }
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> Duration {
        self.rto
    }

    /// Smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// Incorporate a clean RTT sample (never-retransmitted segment).
    pub fn on_sample(&mut self, rtt: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let delta = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                // RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R'|
                self.rttvar = self.rttvar * 3 / 4 + delta / 4;
                // SRTT = 7/8·SRTT + 1/8·R'
                self.srtt = Some(srtt * 7 / 8 + rtt / 8);
            }
        }
        self.backoffs = 0;
        self.recompute();
    }

    /// A retransmission timer expired: double the RTO (Karn backoff).
    pub fn on_timeout(&mut self) {
        self.backoffs = (self.backoffs + 1).min(16);
        self.recompute();
    }

    fn recompute(&mut self) {
        let base = match self.srtt {
            Some(srtt) => srtt + (self.rttvar * 4).max(Duration::from_millis(1)),
            None => Duration::from_secs(1),
        };
        let backed_off = base * 2u32.saturating_pow(self.backoffs.min(16));
        self.rto = backed_off.clamp(MIN_RTO, MAX_RTO);
    }
}

impl Default for RtoEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_one_second() {
        assert_eq!(RtoEstimator::new().rto(), Duration::from_secs(1));
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RtoEstimator::new();
        e.on_sample(Duration::from_millis(400));
        assert_eq!(e.srtt(), Some(Duration::from_millis(400)));
        // RTO = 400 + 4*200 = 1200 ms (above the 1 s floor).
        assert_eq!(e.rto(), Duration::from_millis(1200));
    }

    #[test]
    fn constant_samples_shrink_variance_to_floor() {
        let mut e = RtoEstimator::new();
        for _ in 0..100 {
            e.on_sample(Duration::from_millis(100));
        }
        // Variance decays toward zero; the 1 s floor takes over.
        assert_eq!(e.rto(), MIN_RTO);
    }

    #[test]
    fn jitter_inflates_rto() {
        let mut steady = RtoEstimator::new();
        let mut jittery = RtoEstimator::new();
        for k in 0..50 {
            steady.on_sample(Duration::from_millis(500));
            jittery.on_sample(Duration::from_millis(if k % 2 == 0 { 250 } else { 750 }));
        }
        assert!(jittery.rto() > steady.rto());
    }

    #[test]
    fn timeouts_double_then_sample_resets() {
        let mut e = RtoEstimator::new();
        e.on_sample(Duration::from_millis(400));
        let base = e.rto();
        e.on_timeout();
        assert_eq!(e.rto(), base * 2);
        e.on_timeout();
        assert_eq!(e.rto(), base * 4);
        e.on_sample(Duration::from_millis(400));
        assert!(e.rto() < base * 2, "backoff cleared by a fresh sample");
    }

    #[test]
    fn rto_clamped_to_bounds() {
        let mut e = RtoEstimator::new();
        e.on_sample(Duration::from_micros(10));
        assert_eq!(e.rto(), MIN_RTO);
        for _ in 0..40 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), MAX_RTO);
    }

    #[test]
    fn srtt_tracks_shift_in_rtt() {
        let mut e = RtoEstimator::new();
        for _ in 0..50 {
            e.on_sample(Duration::from_millis(50));
        }
        for _ in 0..200 {
            e.on_sample(Duration::from_millis(150));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            (srtt.as_millis() as i64 - 150).abs() < 10,
            "srtt={srtt:?} should have converged to 150 ms"
        );
    }
}
