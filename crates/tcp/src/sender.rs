//! TCP sender agent: NewReno congestion control with optional SACK-based
//! loss recovery, at packet granularity (sequence numbers count segments,
//! as in the ns-2 models every study this paper builds on used).
//!
//! Implements:
//! * slow start / congestion avoidance (packet-counted cwnd),
//! * fast retransmit on three duplicate acks,
//! * NewReno fast recovery with partial-ack retransmission and window
//!   inflation/deflation (RFC 6582),
//! * SACK recovery using the scoreboard "pipe" algorithm (RFC 6675) when
//!   the flavor is [`TcpFlavor::Sack`],
//! * RFC 6298 retransmission timeouts with exponential backoff,
//! * RTT sampling from echoed timestamps (RFC 7323 style).

use qtp_sack::{Scoreboard, SeqRange};
use qtp_simnet::prelude::*;

use crate::rto::RtoEstimator;
use crate::wire::{header_wire_size, TcpHeader, TcpKind, IP_OVERHEAD};

/// Loss-recovery flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpFlavor {
    /// RFC 6582 NewReno: cumulative acks only.
    NewReno,
    /// RFC 6675-style SACK recovery (receiver must enable SACK too).
    Sack,
}

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Payload bytes per segment.
    pub mss: u32,
    /// Recovery flavor.
    pub flavor: TcpFlavor,
    /// Initial congestion window in segments.
    pub initial_cwnd: f64,
    /// Receiver window cap in segments (memory bound; effectively infinite
    /// by default).
    pub rwnd: f64,
    /// Stop after this many data segments (`None`: greedy FTP source).
    pub limit: Option<u64>,
}

impl TcpConfig {
    pub fn new(flavor: TcpFlavor) -> Self {
        TcpConfig {
            mss: 1000,
            flavor,
            initial_cwnd: 2.0,
            rwnd: 10_000.0,
            limit: None,
        }
    }
}

/// TCP sender state machine + simnet agent.
pub struct TcpSender {
    flow: FlowId,
    receiver_node: NodeId,
    cfg: TcpConfig,
    /// Scoreboard: send times, SACK bookkeeping, loss declarations.
    sb: Scoreboard,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    in_recovery: bool,
    /// `next_seq` at the moment recovery began; acks beyond it end recovery.
    recover: u64,
    rto: RtoEstimator,
    /// Generation counter distinguishing live from stale RTO timers.
    timer_gen: u64,
    /// Whether an RTO timer is conceptually armed.
    timer_armed: bool,
    /// Statistics: retransmissions performed.
    pub retransmissions: u64,
    /// Statistics: timeouts suffered.
    pub timeouts: u64,
}

impl TcpSender {
    pub fn new(flow: FlowId, receiver_node: NodeId, cfg: TcpConfig) -> Self {
        let cwnd = cfg.initial_cwnd;
        TcpSender {
            flow,
            receiver_node,
            cfg,
            sb: Scoreboard::new(),
            cwnd,
            ssthresh: 1e9,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            rto: RtoEstimator::new(),
            timer_gen: 0,
            timer_armed: false,
            retransmissions: 0,
            timeouts: 0,
        }
    }

    /// Current congestion window (segments).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Has the configured transfer completed (limit reached and all acked)?
    pub fn finished(&self) -> bool {
        match self.cfg.limit {
            Some(limit) => self.sb.cum_ack() >= limit,
            None => false,
        }
    }

    fn window(&self) -> f64 {
        self.cwnd.min(self.cfg.rwnd)
    }

    /// Packets out in the network, flavor-appropriate.
    fn outstanding(&self) -> f64 {
        match self.cfg.flavor {
            // NewReno has no per-segment knowledge: everything unacked
            // counts (window inflation compensates during recovery).
            TcpFlavor::NewReno => (self.sb.next_seq() - self.sb.cum_ack()) as f64,
            // SACK pipe: unacked minus sacked minus declared-lost-unsent.
            TcpFlavor::Sack => self.sb.in_flight() as f64,
        }
    }

    fn data_wire_size(&self) -> u32 {
        self.cfg.mss + header_wire_size(0) + IP_OVERHEAD
    }

    fn send_new_segment(&mut self, ctx: &mut Ctx) {
        let seq = self.sb.register_send(ctx.now);
        let h = TcpHeader::data(seq, ctx.now.as_nanos());
        ctx.send_new(
            self.flow,
            self.receiver_node,
            self.data_wire_size(),
            h.encode(),
        );
    }

    fn send_retransmission(&mut self, ctx: &mut Ctx, seq: u64) {
        self.sb.register_retransmit(seq, ctx.now);
        self.retransmissions += 1;
        let h = TcpHeader::data(seq, ctx.now.as_nanos());
        ctx.send_new(
            self.flow,
            self.receiver_node,
            self.data_wire_size(),
            h.encode(),
        );
    }

    /// Transmit whatever the window currently allows.
    fn try_send(&mut self, ctx: &mut Ctx) {
        loop {
            // SACK mode: retransmissions have strict priority (RFC 6675).
            if self.cfg.flavor == TcpFlavor::Sack {
                if self.outstanding() >= self.window().floor() {
                    break;
                }
                if let Some(seq) = self.sb.next_lost() {
                    self.send_retransmission(ctx, seq);
                    continue;
                }
            }
            let can_new = match self.cfg.limit {
                Some(limit) => self.sb.next_seq() < limit,
                None => true,
            };
            if !can_new || self.outstanding() >= self.window().floor() {
                break;
            }
            self.send_new_segment(ctx);
        }
        if !self.timer_armed && !self.sb.all_acked() {
            self.arm_timer(ctx);
        }
    }

    fn arm_timer(&mut self, ctx: &mut Ctx) {
        self.timer_gen += 1;
        self.timer_armed = true;
        ctx.set_timer_in(self.rto.rto(), self.timer_gen);
    }

    fn disarm_timer(&mut self) {
        self.timer_gen += 1;
        self.timer_armed = false;
    }

    fn enter_recovery(&mut self, ctx: &mut Ctx) {
        self.ssthresh = (self.outstanding() / 2.0).max(2.0);
        self.recover = self.sb.next_seq();
        self.in_recovery = true;
        match self.cfg.flavor {
            TcpFlavor::NewReno => {
                // Retransmit the presumed-lost head and inflate.
                self.cwnd = self.ssthresh + 3.0;
                let head = self.sb.cum_ack();
                self.send_retransmission(ctx, head);
            }
            TcpFlavor::Sack => {
                // Pipe-based: cwnd pinned to ssthresh, scoreboard supplies
                // the retransmission queue.
                self.cwnd = self.ssthresh;
            }
        }
    }

    fn exit_recovery(&mut self) {
        self.cwnd = self.ssthresh;
        self.in_recovery = false;
        self.dupacks = 0;
    }

    fn on_ack(&mut self, ctx: &mut Ctx, h: &TcpHeader) {
        // RTT sample from the echoed timestamp (RFC 7323: TSecr is the
        // TSval of the segment that triggered this ack).
        if h.ts_nanos > 0 {
            let sample = ctx.now.saturating_since(SimTime::from_nanos(h.ts_nanos));
            if !sample.is_zero() {
                self.rto.on_sample(sample);
            }
        }

        let prev_cum = self.sb.cum_ack();
        let digest = self.sb.on_feedback(h.ack, &h.sack_blocks);

        if h.ack > prev_cum {
            // ---- New data acknowledged ----
            let newly = (h.ack - prev_cum) as f64;
            if self.in_recovery {
                if h.ack >= self.recover {
                    self.exit_recovery();
                } else {
                    // NewReno partial ack: retransmit the next hole and
                    // deflate by the amount acked (RFC 6582).
                    if self.cfg.flavor == TcpFlavor::NewReno {
                        let head = self.sb.cum_ack();
                        self.send_retransmission(ctx, head);
                        self.cwnd = (self.cwnd - newly + 1.0).max(1.0);
                    }
                    // SACK mode: scoreboard retransmissions flow in
                    // try_send; cwnd stays at ssthresh.
                }
            } else {
                self.dupacks = 0;
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly; // slow start
                } else {
                    self.cwnd += newly / self.cwnd; // congestion avoidance
                }
            }
            // Restart the RTO for the new oldest outstanding data.
            if self.sb.all_acked() && self.finished_sending() {
                self.disarm_timer();
            } else {
                self.arm_timer(ctx);
            }
        } else {
            // ---- Duplicate ack ----
            self.dupacks += 1;
            let sack_loss = self.cfg.flavor == TcpFlavor::Sack && !digest.newly_lost.is_empty();
            if !self.in_recovery && (self.dupacks >= 3 || sack_loss) {
                self.enter_recovery(ctx);
            } else if self.in_recovery && self.cfg.flavor == TcpFlavor::NewReno {
                self.cwnd += 1.0; // window inflation per extra dupack
            }
        }
        self.try_send(ctx);
    }

    fn finished_sending(&self) -> bool {
        match self.cfg.limit {
            Some(limit) => self.sb.next_seq() >= limit,
            None => false,
        }
    }

    fn on_timeout(&mut self, ctx: &mut Ctx) {
        self.timeouts += 1;
        self.rto.on_timeout();
        self.ssthresh = (self.outstanding() / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.in_recovery = false;
        self.dupacks = 0;
        // Pull everything back: unsacked outstanding data is presumed lost.
        if self.cfg.flavor == TcpFlavor::Sack {
            let _ = self
                .sb
                .force_mark_lost(SeqRange::new(self.sb.cum_ack(), self.sb.next_seq()));
            // try_send will retransmit the head (window = 1).
            self.arm_timer(ctx);
            self.try_send(ctx);
        } else {
            let head = self.sb.cum_ack();
            if head < self.sb.next_seq() {
                self.send_retransmission(ctx, head);
            }
            self.arm_timer(ctx);
        }
    }
}

impl Agent for TcpSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.try_send(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: &Packet) {
        let Ok(h) = TcpHeader::decode(&pkt.header) else {
            return;
        };
        if h.kind == TcpKind::Ack {
            self.on_ack(ctx, &h);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        if token != self.timer_gen || !self.timer_armed {
            return; // stale timer
        }
        self.timer_armed = false;
        if self.sb.all_acked() && self.finished_sending() {
            return;
        }
        self.on_timeout(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::TcpReceiver;
    use qtp_simnet::loss::LossModel;
    use qtp_simnet::queue::QueueConfig;
    use qtp_simnet::sim::NetworkBuilder;
    use std::time::Duration;

    /// Two hosts, duplex link; returns (sim, data_flow, sender_node id kept
    /// implicit). The forward path takes `loss` and `queue`.
    fn harness(
        flavor: TcpFlavor,
        rate: Rate,
        delay: Duration,
        loss: LossModel,
        queue: QueueConfig,
        limit: Option<u64>,
    ) -> (qtp_simnet::sim::Simulator, FlowId) {
        let mut b = NetworkBuilder::new();
        let s = b.host();
        let r = b.host();
        b.simplex_link(
            s,
            r,
            LinkConfig::new(rate, delay)
                .with_loss(loss)
                .with_queue(queue),
        );
        b.simplex_link(r, s, LinkConfig::new(rate, delay));
        let mut sim = b.build(77);
        let df = sim.register_flow("tcp-data");
        let af = sim.register_flow("tcp-ack");
        let mut cfg = TcpConfig::new(flavor);
        cfg.limit = limit;
        let sack = flavor == TcpFlavor::Sack;
        sim.attach_agent(s, Box::new(TcpSender::new(df, r, cfg)));
        sim.attach_agent(r, Box::new(TcpReceiver::new(df, af, s, sack, 1000)));
        (sim, df)
    }

    #[test]
    fn clean_path_transfers_everything_fast() {
        let (mut sim, df) = harness(
            TcpFlavor::NewReno,
            Rate::from_mbps(10),
            Duration::from_millis(10),
            LossModel::None,
            QueueConfig::DropTailPkts(100),
            Some(500),
        );
        sim.run_until(SimTime::from_secs(10));
        let f = sim.stats().flow(df);
        assert_eq!(f.bytes_app_delivered, 500 * 1000);
    }

    #[test]
    fn slow_start_grows_window_exponentially() {
        // Over a long-RTT clean path, delivered bytes in the first few RTTs
        // should roughly double per RTT: 2, 4, 8, 16...
        let (mut sim, df) = harness(
            TcpFlavor::NewReno,
            Rate::from_mbps(100),
            Duration::from_millis(50), // RTT 100 ms
            LossModel::None,
            QueueConfig::DropTailPkts(1000),
            None,
        );
        sim.set_sample_interval(Duration::from_millis(100));
        sim.run_until(SimTime::from_millis(450));
        let series = &sim.stats().flow(df).arrive_series;
        // Windows arriving per 100 ms slot: ~2, 4, 8, 16 segments.
        let segs: Vec<u64> = series.iter().map(|b| b / 1040).collect();
        assert!(segs[1] >= 2 * segs[0].max(1), "{segs:?}");
        assert!(segs[2] >= 2 * segs[1], "{segs:?}");
    }

    #[test]
    fn greedy_flow_fills_bottleneck() {
        let (mut sim, df) = harness(
            TcpFlavor::NewReno,
            Rate::from_mbps(2),
            Duration::from_millis(10),
            LossModel::None,
            QueueConfig::DropTailPkts(50),
            None,
        );
        sim.run_until(SimTime::from_secs(30));
        let bps = sim.stats().flow(df).throughput_bps(Duration::from_secs(30));
        assert!(bps > 1_800_000.0, "utilization too low: {bps}");
    }

    #[test]
    fn recovers_from_random_loss_newreno() {
        let (mut sim, df) = harness(
            TcpFlavor::NewReno,
            Rate::from_mbps(10),
            Duration::from_millis(5),
            LossModel::bernoulli(0.01),
            QueueConfig::DropTailPkts(100),
            Some(2000),
        );
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(
            sim.stats().flow(df).bytes_app_delivered,
            2000 * 1000,
            "full reliability despite 1% loss"
        );
    }

    #[test]
    fn recovers_from_random_loss_sack() {
        let (mut sim, df) = harness(
            TcpFlavor::Sack,
            Rate::from_mbps(10),
            Duration::from_millis(5),
            LossModel::bernoulli(0.03),
            QueueConfig::DropTailPkts(100),
            Some(2000),
        );
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(sim.stats().flow(df).bytes_app_delivered, 2000 * 1000);
    }

    #[test]
    fn sack_beats_newreno_under_bursty_loss() {
        // Gilbert-Elliott burst loss: SACK recovers multiple losses per
        // window in one RTT, NewReno needs one RTT per loss.
        fn completion_time(flavor: TcpFlavor) -> f64 {
            let (mut sim, df) = harness(
                flavor,
                Rate::from_mbps(10),
                Duration::from_millis(20),
                LossModel::gilbert_elliott(0.01, 0.3, 0.0, 0.5),
                QueueConfig::DropTailPkts(200),
                Some(3000),
            );
            let mut t = 0.0;
            for step in 1..=1200 {
                sim.run_until(SimTime::from_millis(step * 100));
                if sim.stats().flow(df).bytes_app_delivered >= 3000 * 1000 {
                    t = step as f64 * 0.1;
                    break;
                }
            }
            assert!(t > 0.0, "{flavor:?} never completed");
            t
        }
        let t_sack = completion_time(TcpFlavor::Sack);
        let t_reno = completion_time(TcpFlavor::NewReno);
        assert!(
            t_sack <= t_reno * 1.05,
            "SACK ({t_sack}s) should not lose to NewReno ({t_reno}s)"
        );
    }

    #[test]
    fn timeout_recovers_tail_loss() {
        // Lose every 50th packet; with limit=49 the LAST packet of the
        // transfer can be among the lost — only the RTO can save it.
        let (mut sim, df) = harness(
            TcpFlavor::NewReno,
            Rate::from_mbps(10),
            Duration::from_millis(5),
            LossModel::periodic(25),
            QueueConfig::DropTailPkts(100),
            Some(200),
        );
        sim.run_until(SimTime::from_secs(120));
        assert_eq!(sim.stats().flow(df).bytes_app_delivered, 200 * 1000);
    }

    #[test]
    fn congestion_collapse_avoided_under_tiny_buffer() {
        // 5-packet buffer forces frequent loss; TCP must still make steady
        // progress and not deadlock.
        let (mut sim, df) = harness(
            TcpFlavor::NewReno,
            Rate::from_mbps(1),
            Duration::from_millis(20),
            LossModel::None,
            QueueConfig::DropTailPkts(5),
            None,
        );
        sim.run_until(SimTime::from_secs(60));
        let bps = sim.stats().flow(df).throughput_bps(Duration::from_secs(60));
        assert!(bps > 500_000.0, "throughput collapsed: {bps}");
    }
}
