//! TCP segment headers for the simulator.
//!
//! Packet-granularity TCP (sequence numbers count segments, as in ns-2):
//! the header carries what the protocol logic needs — kind, sequence /
//! cumulative ack, a transmit timestamp for RTT sampling, and up to three
//! SACK blocks. Encoding is explicit big-endian bytes: endpoints exchange
//! real octets through the simulated network, not Rust objects.

use qtp_sack::SeqRange;

/// Segment type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpKind {
    /// Data segment (carries one MSS of payload).
    Data,
    /// Pure acknowledgment.
    Ack,
}

/// Decoded TCP segment header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader {
    pub kind: TcpKind,
    /// Data: the segment's sequence number. Ack: unused (0).
    pub seq: u64,
    /// Ack: next expected sequence (cumulative). Data: unused (0).
    pub ack: u64,
    /// Data: sender transmit timestamp (ns). Ack: echoed timestamp of the
    /// segment that triggered the ack (0 when echoing a retransmission).
    pub ts_nanos: u64,
    /// Ack: SACK blocks (most recent first), empty for non-SACK flows.
    pub sack_blocks: Vec<SeqRange>,
}

/// Wire size in bytes of an encoded header with `n_blocks` SACK blocks:
/// 1 (kind) + 8 (seq) + 8 (ack) + 8 (ts) + 1 (count) + 16 per block.
pub fn header_wire_size(n_blocks: usize) -> u32 {
    26 + 16 * n_blocks as u32
}

/// Conventional IP+TCP overhead added to every simulated segment beyond
/// our explicit header (brings totals close to real 40-byte TCP/IP).
pub const IP_OVERHEAD: u32 = 20;

/// Maximum SACK blocks carried (RFC 2018 with timestamps leaves room for 3).
pub const MAX_TCP_SACK_BLOCKS: usize = 3;

/// Errors from decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Unknown segment kind byte.
    BadKind(u8),
    /// Block count exceeds the allowed maximum or the buffer.
    BadBlockCount(u8),
    /// A SACK block was empty or inverted.
    BadBlock,
}

impl TcpHeader {
    /// A data segment header.
    pub fn data(seq: u64, ts_nanos: u64) -> Self {
        TcpHeader {
            kind: TcpKind::Data,
            seq,
            ack: 0,
            ts_nanos,
            sack_blocks: Vec::new(),
        }
    }

    /// An acknowledgment header.
    pub fn ack(ack: u64, ts_echo_nanos: u64, sack_blocks: Vec<SeqRange>) -> Self {
        debug_assert!(sack_blocks.len() <= MAX_TCP_SACK_BLOCKS);
        TcpHeader {
            kind: TcpKind::Ack,
            seq: 0,
            ack,
            ts_nanos: ts_echo_nanos,
            sack_blocks,
        }
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(header_wire_size(self.sack_blocks.len()) as usize);
        out.push(match self.kind {
            TcpKind::Data => 0,
            TcpKind::Ack => 1,
        });
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.extend_from_slice(&self.ts_nanos.to_be_bytes());
        out.push(self.sack_blocks.len() as u8);
        for b in &self.sack_blocks {
            out.extend_from_slice(&b.start.to_be_bytes());
            out.extend_from_slice(&b.end.to_be_bytes());
        }
        out
    }

    /// Decode from bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        if buf.len() < 26 {
            return Err(WireError::Truncated);
        }
        let kind = match buf[0] {
            0 => TcpKind::Data,
            1 => TcpKind::Ack,
            k => return Err(WireError::BadKind(k)),
        };
        let seq = u64::from_be_bytes(buf[1..9].try_into().unwrap());
        let ack = u64::from_be_bytes(buf[9..17].try_into().unwrap());
        let ts_nanos = u64::from_be_bytes(buf[17..25].try_into().unwrap());
        let n = buf[25];
        if n as usize > MAX_TCP_SACK_BLOCKS || buf.len() < 26 + 16 * n as usize {
            return Err(WireError::BadBlockCount(n));
        }
        let mut sack_blocks = Vec::with_capacity(n as usize);
        for i in 0..n as usize {
            let off = 26 + 16 * i;
            let start = u64::from_be_bytes(buf[off..off + 8].try_into().unwrap());
            let end = u64::from_be_bytes(buf[off + 8..off + 16].try_into().unwrap());
            if end <= start {
                return Err(WireError::BadBlock);
            }
            sack_blocks.push(SeqRange::new(start, end));
        }
        Ok(TcpHeader {
            kind,
            seq,
            ack,
            ts_nanos,
            sack_blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        let h = TcpHeader::data(12345, 999_000_111);
        let decoded = TcpHeader::decode(&h.encode()).unwrap();
        assert_eq!(h, decoded);
    }

    #[test]
    fn ack_with_blocks_roundtrip() {
        let h = TcpHeader::ack(42, 7, vec![SeqRange::new(50, 60), SeqRange::new(70, 71)]);
        let bytes = h.encode();
        assert_eq!(bytes.len() as u32, header_wire_size(2));
        assert_eq!(TcpHeader::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn truncated_rejected() {
        let h = TcpHeader::data(1, 2);
        let bytes = h.encode();
        assert_eq!(TcpHeader::decode(&bytes[..10]), Err(WireError::Truncated));
    }

    #[test]
    fn bad_kind_rejected() {
        let mut bytes = TcpHeader::data(1, 2).encode();
        bytes[0] = 9;
        assert_eq!(TcpHeader::decode(&bytes), Err(WireError::BadKind(9)));
    }

    #[test]
    fn bad_block_count_rejected() {
        let mut bytes = TcpHeader::ack(1, 2, vec![]).encode();
        bytes[25] = 4; // claims 4 blocks, max is 3
        assert_eq!(TcpHeader::decode(&bytes), Err(WireError::BadBlockCount(4)));
        let mut bytes2 = TcpHeader::ack(1, 2, vec![]).encode();
        bytes2[25] = 1; // claims 1 block but no bytes follow
        assert_eq!(TcpHeader::decode(&bytes2), Err(WireError::BadBlockCount(1)));
    }

    #[test]
    fn inverted_block_rejected() {
        let h = TcpHeader::ack(1, 2, vec![SeqRange::new(5, 6)]);
        let mut bytes = h.encode();
        // Swap start/end of the block.
        bytes[26..34].copy_from_slice(&6u64.to_be_bytes());
        bytes[34..42].copy_from_slice(&5u64.to_be_bytes());
        assert_eq!(TcpHeader::decode(&bytes), Err(WireError::BadBlock));
    }

    #[test]
    fn wire_size_formula() {
        assert_eq!(header_wire_size(0), 26);
        assert_eq!(header_wire_size(3), 26 + 48);
    }
}
