//! # qtp-tcp — TCP NewReno / SACK baseline
//!
//! The comparator every claim in the paper's §4 is measured against: a
//! packet-granularity TCP (as in the ns-2 models used by the cited AF
//! studies) implemented as [`qtp_simnet`] agents.
//!
//! * [`sender::TcpSender`] — slow start, congestion avoidance, fast
//!   retransmit, NewReno fast recovery (RFC 6582) or SACK pipe recovery
//!   (RFC 6675), RFC 6298 timeouts.
//! * [`receiver::TcpReceiver`] — reassembly + immediate acks with optional
//!   SACK blocks (RFC 2018), goodput accounting.
//! * [`wire`] — explicit byte-level segment headers.
//! * [`rto`] — the RFC 6298 estimator.
//!
//! The connection handshake is not modeled (transfers start in slow start
//! with `initial_cwnd`), matching the simulation setups of Seddigh et al.
//! and the gTFRC studies this repository reproduces.

pub mod receiver;
pub mod rto;
pub mod sender;
pub mod wire;

pub use receiver::TcpReceiver;
pub use rto::{RtoEstimator, MAX_RTO, MIN_RTO};
pub use sender::{TcpConfig, TcpFlavor, TcpSender};
pub use wire::{TcpHeader, TcpKind, WireError};
