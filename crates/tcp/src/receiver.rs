//! TCP receiver agent: reassembly plus immediate (optionally SACK-bearing)
//! acknowledgments.

use qtp_sack::{ReceiverBuffer, SeqRange};
use qtp_simnet::prelude::*;

use crate::wire::{header_wire_size, TcpHeader, TcpKind, IP_OVERHEAD, MAX_TCP_SACK_BLOCKS};

/// Receiver half of a simulated TCP connection.
pub struct TcpReceiver {
    /// Flow id of the incoming data stream (for goodput accounting).
    data_flow: FlowId,
    /// Flow id used by outgoing acknowledgments.
    ack_flow: FlowId,
    /// Node the sender lives on (destination for acks).
    sender_node: NodeId,
    /// Whether to include SACK blocks in acks.
    sack_enabled: bool,
    /// Payload bytes per data segment (for goodput accounting).
    mss: u32,
    buf: ReceiverBuffer,
}

impl TcpReceiver {
    pub fn new(
        data_flow: FlowId,
        ack_flow: FlowId,
        sender_node: NodeId,
        sack_enabled: bool,
        mss: u32,
    ) -> Self {
        TcpReceiver {
            data_flow,
            ack_flow,
            sender_node,
            sack_enabled,
            mss,
            buf: ReceiverBuffer::new(),
        }
    }

    /// Sequences delivered in order so far.
    pub fn delivered(&self) -> u64 {
        self.buf.delivered_total()
    }
}

impl Agent for TcpReceiver {
    fn on_packet(&mut self, ctx: &mut Ctx, pkt: &Packet) {
        let Ok(h) = TcpHeader::decode(&pkt.header) else {
            return; // corrupt header: drop silently
        };
        if h.kind != TcpKind::Data {
            return;
        }
        if let qtp_sack::Arrival::New { delivered } = self.buf.on_packet(h.seq) {
            if delivered > 0 {
                ctx.stats
                    .app_deliver(self.data_flow, delivered * self.mss as u64);
            }
        }
        // Ack immediately (no delayed acks: the configuration used by the
        // AF-study simulations this reproduces).
        let blocks: Vec<SeqRange> = if self.sack_enabled {
            self.buf.sack_blocks(MAX_TCP_SACK_BLOCKS)
        } else {
            Vec::new()
        };
        let ack = TcpHeader::ack(self.buf.cum_ack(), h.ts_nanos, blocks);
        let wire = header_wire_size(ack.sack_blocks.len()) + IP_OVERHEAD;
        ctx.send_new(self.ack_flow, self.sender_node, wire, ack.encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtp_simnet::sim::NetworkBuilder;
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::time::Duration;

    /// Captures acks arriving back at the sender node.
    struct AckTrap {
        acks: Rc<RefCell<Vec<TcpHeader>>>,
        data_flow: FlowId,
        receiver_node: NodeId,
        script: Vec<(u64, u64)>, // (seq, ts) to send at start
    }

    impl Agent for AckTrap {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for &(seq, ts) in &self.script {
                let h = TcpHeader::data(seq, ts);
                ctx.send_new(self.data_flow, self.receiver_node, 1040, h.encode());
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx, pkt: &Packet) {
            self.acks
                .borrow_mut()
                .push(TcpHeader::decode(&pkt.header).unwrap());
        }
    }

    fn run_script(script: Vec<(u64, u64)>, sack: bool) -> Vec<TcpHeader> {
        let mut b = NetworkBuilder::new();
        let s = b.host();
        let r = b.host();
        b.duplex_link(
            s,
            r,
            LinkConfig::new(Rate::from_mbps(100), Duration::from_millis(1)),
        );
        let mut sim = b.build(1);
        let df = sim.register_flow("data");
        let af = sim.register_flow("ack");
        let acks = Rc::new(RefCell::new(Vec::new()));
        sim.attach_agent(
            s,
            Box::new(AckTrap {
                acks: acks.clone(),
                data_flow: df,
                receiver_node: r,
                script,
            }),
        );
        sim.attach_agent(r, Box::new(TcpReceiver::new(df, af, s, sack, 1000)));
        sim.run_until(SimTime::from_secs(1));
        let out = acks.borrow().clone();
        out
    }

    #[test]
    fn acks_every_data_segment_cumulatively() {
        let acks = run_script(vec![(0, 10), (1, 20), (2, 30)], false);
        assert_eq!(acks.len(), 3);
        assert_eq!(acks[0].ack, 1);
        assert_eq!(acks[1].ack, 2);
        assert_eq!(acks[2].ack, 3);
        // Timestamps echoed from the triggering segment.
        assert_eq!(acks[0].ts_nanos, 10);
        assert_eq!(acks[2].ts_nanos, 30);
    }

    #[test]
    fn gap_produces_duplicate_acks_with_sack() {
        let acks = run_script(vec![(0, 1), (2, 2), (3, 3)], true);
        assert_eq!(acks.len(), 3);
        assert_eq!(acks[1].ack, 1, "cum ack stuck at the hole");
        assert_eq!(acks[1].sack_blocks, vec![SeqRange::new(2, 3)]);
        assert_eq!(acks[2].ack, 1);
        assert_eq!(acks[2].sack_blocks, vec![SeqRange::new(2, 4)]);
    }

    #[test]
    fn no_sack_blocks_when_disabled() {
        let acks = run_script(vec![(0, 1), (2, 2)], false);
        assert!(acks.iter().all(|a| a.sack_blocks.is_empty()));
    }
}
