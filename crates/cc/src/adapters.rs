//! [`CongestionControl`] adapters over the existing machines: RFC 3448
//! TFRC, gTFRC and the open-loop fixed rate.
//!
//! The adapters are pure delegation — same calls, same order, same
//! [`qtp_metrics::CostMeter`](qtp_tfrc::TfrcSender) ticks — so swapping
//! the transport sender from enum dispatch to this seam leaves every
//! fixed-seed run byte-identical.

use qtp_simnet::time::{Rate, SimTime};
use qtp_tfrc::{GtfrcSender, SenderConfig, TfrcSender};
use std::time::Duration;

use crate::{CcState, CongestionControl, FeedbackReport};

/// RFC 3448 TFRC behind the trait seam.
#[derive(Debug, Clone)]
pub struct TfrcCc {
    inner: TfrcSender,
}

impl TfrcCc {
    /// A TFRC controller for segment size `s`.
    pub fn new(s: u32) -> Self {
        TfrcCc {
            inner: TfrcSender::new(SenderConfig::new(s)),
        }
    }

    /// The wrapped RFC 3448 sender.
    pub fn sender(&self) -> &TfrcSender {
        &self.inner
    }
}

impl CongestionControl for TfrcCc {
    fn seed_rtt(&mut self, now: SimTime, rtt: Duration) {
        self.inner.seed_rtt(now, rtt);
    }

    fn on_feedback(&mut self, fb: &FeedbackReport) {
        self.inner
            .on_feedback(fb.now, fb.ts_echo, fb.t_delay, fb.x_recv, fb.p);
    }

    fn on_nofeedback_timer(&mut self, now: SimTime) {
        self.inner.on_nofeedback_timer(now);
    }

    fn nofeedback_deadline(&self) -> SimTime {
        self.inner.nofeedback_deadline()
    }

    fn allowed_rate(&self) -> f64 {
        self.inner.allowed_rate()
    }

    fn send_interval(&self) -> Duration {
        self.inner.send_interval()
    }

    fn rtt(&self) -> Option<Duration> {
        self.inner.rtt()
    }

    fn ops(&self) -> u64 {
        self.inner.meter.total()
    }

    fn state(&self) -> CcState {
        CcState::RateBased {
            x_bps: (self.inner.allowed_rate() * 8.0) as u64,
        }
    }

    fn name(&self) -> &'static str {
        "tfrc"
    }
}

/// gTFRC (`X = max(g, X_tfrc)`) behind the trait seam.
#[derive(Debug, Clone)]
pub struct GtfrcCc {
    inner: GtfrcSender,
}

impl GtfrcCc {
    /// A gTFRC controller for segment size `s` with guaranteed floor `g`.
    pub fn new(s: u32, target: Rate) -> Self {
        GtfrcCc {
            inner: GtfrcSender::new(SenderConfig::new(s), target),
        }
    }

    /// The wrapped gTFRC sender.
    pub fn sender(&self) -> &GtfrcSender {
        &self.inner
    }
}

impl CongestionControl for GtfrcCc {
    fn seed_rtt(&mut self, now: SimTime, rtt: Duration) {
        self.inner.seed_rtt(now, rtt);
    }

    fn on_feedback(&mut self, fb: &FeedbackReport) {
        self.inner
            .on_feedback(fb.now, fb.ts_echo, fb.t_delay, fb.x_recv, fb.p);
    }

    fn on_nofeedback_timer(&mut self, now: SimTime) {
        self.inner.on_nofeedback_timer(now);
    }

    fn nofeedback_deadline(&self) -> SimTime {
        self.inner.nofeedback_deadline()
    }

    fn allowed_rate(&self) -> f64 {
        self.inner.allowed_rate()
    }

    fn send_interval(&self) -> Duration {
        self.inner.send_interval()
    }

    fn rtt(&self) -> Option<Duration> {
        self.inner.tfrc().rtt()
    }

    fn ops(&self) -> u64 {
        self.inner.tfrc().meter.total()
    }

    fn state(&self) -> CcState {
        CcState::RateBased {
            x_bps: (self.inner.allowed_rate() * 8.0) as u64,
        }
    }

    fn name(&self) -> &'static str {
        "gtfrc"
    }
}

/// Open-loop fixed rate (ablation tool; ignores feedback).
#[derive(Debug, Clone)]
pub struct FixedCc {
    rate: Rate,
    s: u32,
}

impl FixedCc {
    /// A fixed-rate controller pacing `s`-byte packets at `rate`.
    pub fn new(rate: Rate, s: u32) -> Self {
        FixedCc { rate, s }
    }
}

impl CongestionControl for FixedCc {
    fn seed_rtt(&mut self, _now: SimTime, _rtt: Duration) {}

    fn on_feedback(&mut self, _fb: &FeedbackReport) {}

    fn on_nofeedback_timer(&mut self, _now: SimTime) {}

    fn nofeedback_deadline(&self) -> SimTime {
        SimTime::MAX
    }

    fn allowed_rate(&self) -> f64 {
        self.rate.bytes_per_sec()
    }

    fn send_interval(&self) -> Duration {
        self.rate.tx_time(self.s)
    }

    fn rtt(&self) -> Option<Duration> {
        None
    }

    fn ops(&self) -> u64 {
        0
    }

    fn state(&self) -> CcState {
        CcState::FixedRate {
            x_bps: self.rate.bps(),
        }
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfrc_adapter_matches_the_raw_sender() {
        let mut a = TfrcCc::new(1000);
        let mut raw = TfrcSender::new(SenderConfig::new(1000));
        a.seed_rtt(SimTime::ZERO, Duration::from_millis(100));
        raw.seed_rtt(SimTime::ZERO, Duration::from_millis(100));
        let fb = FeedbackReport {
            now: SimTime::from_millis(100),
            ts_echo: SimTime::ZERO,
            t_delay: Duration::ZERO,
            x_recv: 1e9,
            p: 0.01,
            newly_acked_bytes: 40_000,
            newly_lost_pkts: 1,
        };
        a.on_feedback(&fb);
        raw.on_feedback(fb.now, fb.ts_echo, fb.t_delay, fb.x_recv, fb.p);
        assert_eq!(a.allowed_rate(), raw.allowed_rate());
        assert_eq!(a.nofeedback_deadline(), raw.nofeedback_deadline());
        assert_eq!(a.rtt(), raw.rtt());
        assert_eq!(a.ops(), raw.meter.total());
    }

    #[test]
    fn gtfrc_adapter_keeps_the_floor() {
        let mut g = GtfrcCc::new(1000, Rate::from_mbps(2));
        g.seed_rtt(SimTime::ZERO, Duration::from_millis(100));
        g.on_feedback(&FeedbackReport {
            now: SimTime::from_millis(100),
            ts_echo: SimTime::ZERO,
            t_delay: Duration::ZERO,
            x_recv: 1_000.0,
            p: 0.4,
            newly_acked_bytes: 0,
            newly_lost_pkts: 10,
        });
        assert!(g.allowed_rate() >= 250_000.0, "gTFRC floor is the target");
    }

    #[test]
    fn fixed_ignores_everything() {
        let f = FixedCc::new(Rate::from_kbps(800), 1000);
        assert_eq!(f.allowed_rate(), 100_000.0);
        assert_eq!(f.nofeedback_deadline(), SimTime::MAX);
        assert_eq!(f.send_interval(), Duration::from_millis(10));
        assert!(matches!(f.state(), CcState::FixedRate { x_bps: 800_000 }));
    }
}
