//! # qtp-cc — pluggable congestion control
//!
//! The paper's axis 3 (negotiable congestion control) behind one sans-io
//! seam: the [`CongestionControl`] trait. A controller consumes feedback
//! reports ([`FeedbackReport`]: acked/lost accounting, RTT echo fields,
//! reported receive rate), send notifications and a nofeedback timer; it
//! produces an allowed sending rate, an optional in-flight window limit
//! (window-based controllers pace near `cwnd / RTT` and let the window
//! bound the queue) plus a typed [`CcState`] snapshot for the
//! observability plane.
//!
//! Five controllers live behind the seam:
//!
//! * [`TfrcCc`] — RFC 3448 TFRC (adapter over [`qtp_tfrc::TfrcSender`]);
//! * [`GtfrcCc`] — gTFRC, the DiffServ/AF floor `X = max(g, X_tfrc)`;
//! * [`FixedCc`] — open-loop fixed rate (ablation tool);
//! * [`Cubic`] — RFC 8312 cubic window growth with the TCP-friendly
//!   region, paced at `cwnd / RTT`;
//! * [`BbrLite`] — a deterministic model-based controller: windowed-max
//!   bandwidth and windowed-min RTT filters driving a
//!   startup → drain → probe-bandwidth cycle (no pacing-gain
//!   randomization, so fixed-seed runs stay byte-identical).
//!
//! The shared RTT/seed/timer arithmetic lives in [`qtp_tfrc::update`] —
//! one copy for the equation-based sender and every controller here.

#![deny(missing_docs)]

pub mod adapters;
pub mod bbr;
pub mod cubic;
pub mod filter;

pub use adapters::{FixedCc, GtfrcCc, TfrcCc};
pub use bbr::{BbrLite, BbrPhase};
pub use cubic::Cubic;
pub use filter::{WindowedMax, WindowedMin};

use qtp_simnet::time::SimTime;
use std::time::Duration;

/// One processed feedback report, as seen by a controller.
///
/// The transport computes the loss summary (`p`, `newly_lost_pkts`) and
/// ack accounting once and hands every controller the same view; each
/// controller reads the fields its model needs (TFRC the equation inputs,
/// CUBIC the ack/loss counts, BBR-lite the delivery rate and RTT echo).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackReport {
    /// Local arrival time of the report.
    pub now: SimTime,
    /// Echoed send timestamp (RTT reconstruction).
    pub ts_echo: SimTime,
    /// Receiver-side hold time to subtract from the echo age.
    pub t_delay: Duration,
    /// Receive rate the peer reports, bytes/second.
    pub x_recv: f64,
    /// Loss event rate in force (receiver- or sender-computed — the
    /// composition seam; `0.0` while loss-free).
    pub p: f64,
    /// Bytes newly acknowledged by this report (cumulative-ack advance).
    pub newly_acked_bytes: u64,
    /// Packets newly declared lost by this report.
    pub newly_lost_pkts: u32,
}

/// Typed controller state snapshot for tracing (`qtptrace` timelines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcState {
    /// Equation/rate-based controller (TFRC, gTFRC): just the rate.
    RateBased {
        /// Allowed rate, bits/second.
        x_bps: u64,
    },
    /// Open-loop fixed rate.
    FixedRate {
        /// Configured rate, bits/second.
        x_bps: u64,
    },
    /// CUBIC window state.
    Cubic {
        /// Congestion window, bytes.
        cwnd_bytes: u64,
        /// Window size at the last multiplicative decrease, bytes.
        w_max_bytes: u64,
        /// Whether the TCP-friendly region is currently governing.
        tcp_friendly: bool,
    },
    /// BBR-lite model state.
    BbrLite {
        /// Current phase of the startup/drain/probe cycle.
        phase: BbrPhase,
        /// Windowed-max bottleneck bandwidth estimate, bits/second.
        btlbw_bps: u64,
        /// Windowed-min RTT estimate, microseconds.
        min_rtt_us: u64,
    },
}

/// A sans-io congestion controller negotiated onto one connection.
///
/// The contract mirrors the transport sender's needs exactly: the
/// endpoint seeds the RTT from the handshake, forwards each feedback
/// report, fires the nofeedback timer at [`nofeedback_deadline`], and
/// paces new data at [`send_interval`]. Everything is deterministic —
/// no clock reads, no randomness — so fixed-seed simulations reproduce
/// byte-identically with any controller.
///
/// [`nofeedback_deadline`]: CongestionControl::nofeedback_deadline
/// [`send_interval`]: CongestionControl::send_interval
pub trait CongestionControl: std::fmt::Debug {
    /// Seed the RTT from the connection handshake (RFC 3448 §4.2: the
    /// initial rate becomes one RFC 3390 initial window per RTT).
    fn seed_rtt(&mut self, now: SimTime, rtt: Duration);

    /// Process one feedback report.
    fn on_feedback(&mut self, fb: &FeedbackReport);

    /// Notification that `bytes` of new data were handed to the network.
    /// Controllers that model inflight data may use it; the default is a
    /// no-op.
    fn on_send(&mut self, _now: SimTime, _bytes: u32) {}

    /// The nofeedback timer expired: back off.
    fn on_nofeedback_timer(&mut self, now: SimTime);

    /// Absolute deadline of the nofeedback timer ([`SimTime::MAX`] for
    /// controllers that never arm it).
    fn nofeedback_deadline(&self) -> SimTime;

    /// Allowed sending rate, bytes/second. Window-based controllers
    /// report the cwnd-derived pacing rate `cwnd / RTT`.
    fn allowed_rate(&self) -> f64;

    /// Inter-packet gap at the allowed rate.
    fn send_interval(&self) -> Duration;

    /// Congestion-window limit on unacknowledged bytes in flight, if this
    /// controller is window-based. The transport stops sending (while
    /// keeping the pace timer running) whenever in-flight data meets the
    /// limit, which is what actually bounds the queue a window controller
    /// builds — the pacing rate alone cannot, because queueing inflates
    /// the RTT it is derived from. Rate-based controllers return `None`
    /// (the default) and are governed purely by [`send_interval`].
    ///
    /// [`send_interval`]: CongestionControl::send_interval
    fn cwnd_limit(&self) -> Option<u64> {
        None
    }

    /// Smoothed RTT, if known.
    fn rtt(&self) -> Option<Duration>;

    /// Sender-side CC processing operations so far (cost accounting for
    /// the E5-style processing-load ledger; 0 where not metered).
    fn ops(&self) -> u64;

    /// Typed state snapshot for the observability plane.
    fn state(&self) -> CcState;

    /// Short stable controller name (`"tfrc"`, `"cubic"`, …).
    fn name(&self) -> &'static str;
}
