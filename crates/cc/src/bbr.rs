//! BBR-lite: a deterministic model-based controller.
//!
//! The full BBR algorithm estimates the path's bottleneck bandwidth
//! (windowed-max of delivery-rate samples) and propagation RTT
//! (windowed-min of RTT samples) and paces at `gain · BtlBw`, cycling the
//! gain to probe for more bandwidth and drain the queue it created. This
//! "lite" version keeps that skeleton — startup, drain, an 8-slot
//! probe-bandwidth gain cycle — and drops everything stochastic: no
//! pacing-gain randomization and no probe-RTT excursions, so a fixed-seed
//! simulation through BBR-lite is byte-identical across runs.
//!
//! Delivery-rate samples come straight from the feedback reports'
//! `X_recv` (the receiver-measured receive rate), which is exactly the
//! signal BBR's delivery-rate estimator approximates.

use qtp_simnet::time::SimTime;
use qtp_tfrc::update;
use std::time::Duration;

use crate::filter::{WindowedMax, WindowedMin};
use crate::{CcState, CongestionControl, FeedbackReport};

/// Startup pacing gain `2/ln 2` (doubles the delivery rate each RTT).
pub const STARTUP_GAIN: f64 = 2.885;

/// Drain pacing gain (inverse of startup: empties the startup queue).
pub const DRAIN_GAIN: f64 = 1.0 / STARTUP_GAIN;

/// The probe-bandwidth gain cycle, advanced once per min-RTT. The probe
/// slot (1.25) is followed by a compensating drain slot (0.75) and six
/// cruise slots — the standard BBR cycle, entered at a fixed slot instead
/// of a random one.
pub const CYCLE_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// Bandwidth filter window, feedback rounds.
pub const BTLBW_WINDOW_ROUNDS: u64 = 10;

/// RTT filter window.
pub const MIN_RTT_WINDOW: Duration = Duration::from_secs(10);

/// Startup ends after this many consecutive rounds without the bandwidth
/// estimate growing by [`FULL_BW_THRESH`].
pub const FULL_BW_ROUNDS: u32 = 3;

/// Growth factor the bandwidth estimate must beat to keep startup alive.
pub const FULL_BW_THRESH: f64 = 1.25;

/// Drain ends once an RTT sample falls back within this factor of the
/// windowed-min RTT — the startup queue is gone (with a hard time cap of
/// [`DRAIN_CAP_RTTS`] propagation RTTs so a noisy floor cannot wedge the
/// phase).
pub const DRAIN_EXIT_THRESH: f64 = 1.25;

/// Upper bound on the drain phase, in propagation RTTs.
pub const DRAIN_CAP_RTTS: u32 = 8;

/// In-flight cap in probe-bandwidth, as a multiple of the estimated BDP
/// (`BtlBw · RTprop`); startup and drain use [`STARTUP_GAIN`] instead.
pub const CWND_GAIN: f64 = 2.0;

/// Phase of the BBR-lite cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbrPhase {
    /// Exponential search for the bottleneck bandwidth.
    Startup,
    /// Draining the queue startup built.
    Drain,
    /// Steady state: cruise at BtlBw, periodically probing.
    ProbeBw,
}

impl BbrPhase {
    /// Stable numeric code for trace events (0/1/2).
    pub fn code(self) -> u8 {
        match self {
            BbrPhase::Startup => 0,
            BbrPhase::Drain => 1,
            BbrPhase::ProbeBw => 2,
        }
    }

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BbrPhase::Startup => "startup",
            BbrPhase::Drain => "drain",
            BbrPhase::ProbeBw => "probe-bw",
        }
    }
}

/// BBR-lite controller state.
#[derive(Debug, Clone)]
pub struct BbrLite {
    s: u32,
    /// Smoothed RTT (for the nofeedback interval, like TFRC).
    r: Option<Duration>,
    /// Windowed-max delivery rate, bytes/second, keyed by round.
    btlbw: WindowedMax,
    /// Windowed-min RTT, seconds, keyed by nanoseconds of sim time.
    min_rtt: WindowedMin,
    /// Feedback rounds processed.
    round: u64,
    phase: BbrPhase,
    /// Best bandwidth seen in startup and the rounds it has stalled.
    full_bw: f64,
    full_bw_count: u32,
    /// Hard cap on the drain phase (normally drain exits earlier, when an
    /// RTT sample returns to the propagation floor).
    drain_until: SimTime,
    /// Probe-bw cycle position and the time the slot was entered.
    cycle_index: usize,
    cycle_stamp: SimTime,
    /// When startup was exited (None while still in startup).
    startup_exit: Option<SimTime>,
    /// Cached allowed rate, bytes/second.
    x: f64,
    nofeedback_deadline: SimTime,
    ops: u64,
}

impl BbrLite {
    /// A BBR-lite controller for segment size `s`. Cold start matches the
    /// other controllers: one packet per second until the handshake seeds
    /// an RTT.
    pub fn new(s: u32) -> Self {
        BbrLite {
            s,
            r: None,
            btlbw: WindowedMax::new(BTLBW_WINDOW_ROUNDS),
            min_rtt: WindowedMin::new(MIN_RTT_WINDOW.as_nanos() as u64),
            round: 0,
            phase: BbrPhase::Startup,
            full_bw: 0.0,
            full_bw_count: 0,
            drain_until: SimTime::ZERO,
            cycle_index: 0,
            cycle_stamp: SimTime::ZERO,
            startup_exit: None,
            x: s as f64,
            nofeedback_deadline: SimTime::from_secs(2),
            ops: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> BbrPhase {
        self.phase
    }

    /// Windowed-max bottleneck bandwidth estimate, bytes/second.
    pub fn btlbw(&self) -> f64 {
        self.btlbw.get().unwrap_or(0.0)
    }

    /// Windowed-min RTT estimate.
    pub fn min_rtt(&self) -> Option<Duration> {
        self.min_rtt.get().map(Duration::from_secs_f64)
    }

    /// When startup was exited, if it has been.
    pub fn startup_exit(&self) -> Option<SimTime> {
        self.startup_exit
    }

    fn gain(&self) -> f64 {
        match self.phase {
            BbrPhase::Startup => STARTUP_GAIN,
            BbrPhase::Drain => DRAIN_GAIN,
            BbrPhase::ProbeBw => CYCLE_GAINS[self.cycle_index],
        }
    }
}

impl CongestionControl for BbrLite {
    fn seed_rtt(&mut self, now: SimTime, rtt: Duration) {
        debug_assert!(!rtt.is_zero());
        self.r = Some(rtt);
        self.min_rtt.update(now.as_nanos(), rtt.as_secs_f64());
        self.x = update::initial_rate(self.s, rtt);
        self.nofeedback_deadline = now + update::nofeedback_interval(self.s, self.x, self.r);
        self.ops += 3;
    }

    fn on_feedback(&mut self, fb: &FeedbackReport) {
        self.ops += 10;
        let sample = update::rtt_sample(fb.now, fb.ts_echo, fb.t_delay);
        self.r = Some(update::rtt_ewma(self.r, sample));
        self.min_rtt.update(fb.now.as_nanos(), sample.as_secs_f64());
        self.round += 1;
        self.btlbw.update(self.round, fb.x_recv);

        let bw = self.btlbw();
        let mrtt = Duration::from_secs_f64(self.min_rtt.get().unwrap_or(sample.as_secs_f64()));
        match self.phase {
            BbrPhase::Startup => {
                if bw >= self.full_bw * FULL_BW_THRESH {
                    self.full_bw = bw;
                    self.full_bw_count = 0;
                } else {
                    self.full_bw_count += 1;
                    if self.full_bw_count >= FULL_BW_ROUNDS {
                        // The pipe is full: drain the startup queue, then
                        // cruise.
                        self.phase = BbrPhase::Drain;
                        self.startup_exit = Some(fb.now);
                        self.drain_until = fb.now + mrtt * DRAIN_CAP_RTTS;
                    }
                }
            }
            BbrPhase::Drain => {
                // The queue is drained when RTT samples return to the
                // propagation floor (or at the hard time cap).
                let drained = sample.as_secs_f64() <= DRAIN_EXIT_THRESH * mrtt.as_secs_f64();
                if drained || fb.now >= self.drain_until {
                    self.phase = BbrPhase::ProbeBw;
                    // Deterministic cycle entry at a cruise slot (full BBR
                    // randomizes this; determinism is the point here).
                    self.cycle_index = 2;
                    self.cycle_stamp = fb.now;
                }
            }
            BbrPhase::ProbeBw => {
                if fb.now.saturating_since(self.cycle_stamp) >= mrtt {
                    self.cycle_index = (self.cycle_index + 1) % CYCLE_GAINS.len();
                    self.cycle_stamp = fb.now;
                }
            }
        }

        self.x = (self.gain() * bw).max(update::min_rate(self.s));
        self.nofeedback_deadline = fb.now + update::nofeedback_interval(self.s, self.x, self.r);
    }

    fn on_nofeedback_timer(&mut self, now: SimTime) {
        // Feedback stopped: halve the pacing rate until the model can be
        // refreshed (the next report restores `gain · BtlBw`).
        self.x = (self.x / 2.0).max(update::min_rate(self.s));
        self.ops += 2;
        self.nofeedback_deadline = now + update::nofeedback_interval(self.s, self.x, self.r);
    }

    fn nofeedback_deadline(&self) -> SimTime {
        self.nofeedback_deadline
    }

    fn allowed_rate(&self) -> f64 {
        self.x
    }

    fn send_interval(&self) -> Duration {
        Duration::from_secs_f64(self.s as f64 / self.x)
    }

    fn cwnd_limit(&self) -> Option<u64> {
        // Cap inflight at a small multiple of the estimated BDP so the
        // model — not a standing queue — carries the rate: the pacing
        // gains shape the queue only if the window stops feeding it.
        let bw = self.btlbw.get()?;
        let mrtt = self.min_rtt.get()?;
        let gain = match self.phase {
            BbrPhase::Startup | BbrPhase::Drain => STARTUP_GAIN,
            BbrPhase::ProbeBw => CWND_GAIN,
        };
        Some(((gain * bw * mrtt) as u64).max(4 * self.s as u64))
    }

    fn rtt(&self) -> Option<Duration> {
        self.r
    }

    fn ops(&self) -> u64 {
        self.ops
    }

    fn state(&self) -> CcState {
        CcState::BbrLite {
            phase: self.phase,
            btlbw_bps: (self.btlbw() * 8.0) as u64,
            min_rtt_us: self.min_rtt.get().map(|s| (s * 1e6) as u64).unwrap_or(0),
        }
    }

    fn name(&self) -> &'static str {
        "bbr-lite"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u32 = 1000;
    const RTT: Duration = Duration::from_millis(100);

    fn fb(now: SimTime, x_recv: f64) -> FeedbackReport {
        FeedbackReport {
            now,
            ts_echo: now - RTT,
            t_delay: Duration::ZERO,
            x_recv,
            p: 0.0,
            newly_acked_bytes: 10_000,
            newly_lost_pkts: 0,
        }
    }

    #[test]
    fn startup_grows_exponentially_then_exits_on_a_plateau() {
        let mut b = BbrLite::new(S);
        b.seed_rtt(SimTime::ZERO, RTT);
        let mut now = SimTime::ZERO;
        // Delivery keeps up with the pacing rate: startup holds.
        let mut delivered = 10_000.0;
        for _ in 0..6 {
            now += RTT;
            b.on_feedback(&fb(now, delivered));
            assert_eq!(b.phase(), BbrPhase::Startup);
            delivered *= 2.0;
        }
        let x_growing = b.allowed_rate();
        assert!(x_growing > delivered, "startup paces above delivery");
        // Delivery saturates at a bottleneck. The first flat round still
        // registers as growth over last round's estimate; the next three
        // stalled rounds exit startup.
        for _ in 0..4 {
            now += RTT;
            b.on_feedback(&fb(now, delivered));
        }
        assert_ne!(b.phase(), BbrPhase::Startup);
        assert_eq!(b.startup_exit(), Some(now));
    }

    #[test]
    fn drain_then_probe_cruises_at_btlbw() {
        let mut b = BbrLite::new(S);
        b.seed_rtt(SimTime::ZERO, RTT);
        let mut now = SimTime::ZERO;
        let bottleneck = 1_250_000.0; // 10 Mbit/s in bytes/s
        for _ in 0..20 {
            now += RTT;
            b.on_feedback(&fb(now, bottleneck));
        }
        assert_eq!(b.phase(), BbrPhase::ProbeBw);
        assert!((b.btlbw() - bottleneck).abs() < 1e-6);
        // Across a full gain cycle the rate stays within [0.75, 1.25]·BtlBw.
        for _ in 0..16 {
            now += RTT;
            b.on_feedback(&fb(now, bottleneck));
            let ratio = b.allowed_rate() / bottleneck;
            assert!((0.75..=1.25).contains(&ratio), "ratio = {ratio}");
        }
    }

    #[test]
    fn drain_holds_while_the_queue_stands_and_inflight_is_bdp_capped() {
        let mut b = BbrLite::new(S);
        b.seed_rtt(SimTime::ZERO, RTT);
        let mut now = SimTime::ZERO;
        let mut delivered = 10_000.0;
        for _ in 0..6 {
            now += RTT;
            b.on_feedback(&fb(now, delivered));
            delivered *= 2.0;
        }
        // Plateau rounds with queue-inflated RTT samples: startup exits
        // into drain, and drain must *hold* while samples stay inflated.
        let inflated = |now: SimTime, x: f64| FeedbackReport {
            now,
            ts_echo: now - 3 * RTT,
            t_delay: Duration::ZERO,
            x_recv: x,
            p: 0.0,
            newly_acked_bytes: 10_000,
            newly_lost_pkts: 0,
        };
        for _ in 0..4 {
            now += RTT;
            b.on_feedback(&inflated(now, delivered));
        }
        assert_eq!(b.phase(), BbrPhase::Drain);
        now += RTT;
        b.on_feedback(&inflated(now, delivered));
        assert_eq!(b.phase(), BbrPhase::Drain, "queue still standing");
        // One sample back at the propagation floor ends the drain…
        now += RTT;
        b.on_feedback(&fb(now, delivered));
        assert_eq!(b.phase(), BbrPhase::ProbeBw);
        // …and the in-flight cap is CWND_GAIN · BtlBw · RTprop.
        let expect = (CWND_GAIN * b.btlbw() * RTT.as_secs_f64()) as u64;
        assert_eq!(b.cwnd_limit(), Some(expect.max(4 * S as u64)));
    }

    #[test]
    fn btlbw_forgets_a_vanished_bottleneck_after_the_window() {
        let mut b = BbrLite::new(S);
        b.seed_rtt(SimTime::ZERO, RTT);
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            now += RTT;
            b.on_feedback(&fb(now, 2_000_000.0));
        }
        // The path degrades: after BTLBW_WINDOW_ROUNDS rounds the old
        // maximum ages out of the filter.
        for _ in 0..BTLBW_WINDOW_ROUNDS {
            now += RTT;
            b.on_feedback(&fb(now, 500_000.0));
        }
        assert!((b.btlbw() - 500_000.0).abs() < 1e-6);
    }

    #[test]
    fn min_rtt_filter_tracks_the_propagation_floor() {
        let mut b = BbrLite::new(S);
        b.seed_rtt(SimTime::ZERO, RTT);
        let mut now = SimTime::ZERO;
        // Queue inflation raises samples; the windowed min holds the floor.
        for k in 0..8u64 {
            now += RTT;
            let inflated = RTT + Duration::from_millis(10 * (k + 1));
            b.on_feedback(&FeedbackReport {
                now,
                ts_echo: now - inflated,
                t_delay: Duration::ZERO,
                x_recv: 1e6,
                p: 0.0,
                newly_acked_bytes: 10_000,
                newly_lost_pkts: 0,
            });
        }
        assert_eq!(b.min_rtt(), Some(RTT));
    }

    #[test]
    fn nofeedback_halves_the_rate() {
        let mut b = BbrLite::new(S);
        b.seed_rtt(SimTime::ZERO, RTT);
        let x = b.allowed_rate();
        b.on_nofeedback_timer(b.nofeedback_deadline());
        assert!((b.allowed_rate() - x / 2.0).abs() < 1e-9);
    }
}
