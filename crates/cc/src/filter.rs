//! Windowed extremum filters (the BBR building block).
//!
//! A [`WindowedMax`] ([`WindowedMin`]) tracks the maximum (minimum) of a
//! time-stamped sample stream over a sliding window: `get()` returns the
//! extremum of every sample `(t_i, v_i)` with `t_now - t_i < window`.
//! Updates are amortized O(1) via a monotonic deque; the proptest below
//! holds the deque exactly equal to a naive full-history oracle.
//!
//! Timestamps are abstract `u64` ticks — BBR-lite keys its bandwidth
//! filter by feedback round and its RTT filter by microseconds.

use std::collections::VecDeque;

/// Sliding-window maximum over a monotonically timestamped stream.
#[derive(Debug, Clone)]
pub struct WindowedMax {
    window: u64,
    /// Monotonically decreasing candidate values, oldest first.
    samples: VecDeque<(u64, f64)>,
}

impl WindowedMax {
    /// A filter whose samples expire once they are `window` ticks old.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "zero-width filter window");
        WindowedMax {
            window,
            samples: VecDeque::new(),
        }
    }

    /// Record a sample. Timestamps must be non-decreasing.
    pub fn update(&mut self, t: u64, v: f64) {
        debug_assert!(self.samples.back().map_or(true, |&(bt, _)| bt <= t));
        while self.samples.back().is_some_and(|&(_, bv)| bv <= v) {
            self.samples.pop_back();
        }
        self.samples.push_back((t, v));
        while self
            .samples
            .front()
            .is_some_and(|&(ft, _)| t.saturating_sub(ft) >= self.window)
        {
            self.samples.pop_front();
        }
    }

    /// Current windowed maximum (None before the first sample).
    pub fn get(&self) -> Option<f64> {
        self.samples.front().map(|&(_, v)| v)
    }
}

/// Sliding-window minimum over a monotonically timestamped stream.
#[derive(Debug, Clone)]
pub struct WindowedMin {
    window: u64,
    /// Monotonically increasing candidate values, oldest first.
    samples: VecDeque<(u64, f64)>,
}

impl WindowedMin {
    /// A filter whose samples expire once they are `window` ticks old.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "zero-width filter window");
        WindowedMin {
            window,
            samples: VecDeque::new(),
        }
    }

    /// Record a sample. Timestamps must be non-decreasing.
    pub fn update(&mut self, t: u64, v: f64) {
        debug_assert!(self.samples.back().map_or(true, |&(bt, _)| bt <= t));
        while self.samples.back().is_some_and(|&(_, bv)| bv >= v) {
            self.samples.pop_back();
        }
        self.samples.push_back((t, v));
        while self
            .samples
            .front()
            .is_some_and(|&(ft, _)| t.saturating_sub(ft) >= self.window)
        {
            self.samples.pop_front();
        }
    }

    /// Current windowed minimum (None before the first sample).
    pub fn get(&self) -> Option<f64> {
        self.samples.front().map(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn max_tracks_and_expires() {
        let mut f = WindowedMax::new(10);
        f.update(0, 5.0);
        f.update(2, 3.0);
        assert_eq!(f.get(), Some(5.0));
        // The 5.0 at t=0 expires at t=10 (strict window).
        f.update(10, 1.0);
        assert_eq!(f.get(), Some(3.0));
        // ...and the 3.0 at t=2 expires at t=12.
        f.update(12, 2.0);
        assert_eq!(f.get(), Some(2.0));
        f.update(13, 9.0);
        assert_eq!(f.get(), Some(9.0));
    }

    #[test]
    fn min_tracks_and_expires() {
        let mut f = WindowedMin::new(5);
        f.update(0, 4.0);
        f.update(1, 7.0);
        assert_eq!(f.get(), Some(4.0));
        f.update(5, 6.0);
        assert_eq!(f.get(), Some(6.0));
        f.update(6, 5.0);
        assert_eq!(f.get(), Some(5.0));
    }

    /// Naive oracle: scan the entire retained history each query.
    fn oracle(history: &[(u64, f64)], now: u64, window: u64, max: bool) -> Option<f64> {
        let vals = history
            .iter()
            .filter(|&&(t, _)| now.saturating_sub(t) < window)
            .map(|&(_, v)| v);
        if max {
            vals.fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
        } else {
            vals.fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
        }
    }

    proptest! {
        /// The O(1) monotonic-deque filters agree with the naive
        /// full-history scan after every single update.
        #[test]
        fn filters_match_full_history_oracle(
            window in 1u64..50,
            steps in prop::collection::vec((0u64..8, 0u32..1_000), 1..200),
        ) {
            let mut fmax = WindowedMax::new(window);
            let mut fmin = WindowedMin::new(window);
            let mut history: Vec<(u64, f64)> = Vec::new();
            let mut t = 0u64;
            for &(dt, raw) in &steps {
                t += dt; // non-decreasing timestamps, frequent ties
                let v = raw as f64 / 8.0;
                fmax.update(t, v);
                fmin.update(t, v);
                history.push((t, v));
                prop_assert_eq!(fmax.get(), oracle(&history, t, window, true));
                prop_assert_eq!(fmin.get(), oracle(&history, t, window, false));
            }
        }
    }
}
