//! CUBIC congestion control (RFC 8312), adapted to the rate-paced
//! transport.
//!
//! The window grows along the cubic function
//! `W(t) = C·(t − K)³ + W_max` after each multiplicative decrease, with
//! `K = ∛(W_max·(1 − β)/C)` — concave up to the previous saturation
//! point `W_max` (reached exactly at `t = K`, the inflection point),
//! convex beyond it. In the low-window regime the TCP-friendly region
//! `W_est(t) = W_max·β + 3·(1−β)/(1+β)·t/RTT` governs instead, so CUBIC
//! never underperforms standard AIMD.
//!
//! The transport paces by rate but enforces this controller's
//! [`cwnd_limit`](crate::CongestionControl::cwnd_limit): at most `cwnd`
//! bytes may be unacknowledged in flight, which is what bounds the queue
//! a window controller builds. The reported pacing rate is slightly
//! *above* `cwnd / RTT` ([`PACING_GAIN`]) so the window — not the pace
//! timer — is the binding constraint, as in a window-clocked TCP.

use qtp_simnet::time::SimTime;
use qtp_tfrc::update;
use std::time::Duration;

use crate::{CcState, CongestionControl, FeedbackReport};

/// The cubic scaling constant `C`, window units (packets) per second³.
pub const CUBIC_C: f64 = 0.4;

/// Multiplicative decrease factor `β` (RFC 8312 §4.5).
pub const CUBIC_BETA: f64 = 0.7;

/// Minimum congestion window, packets.
pub const MIN_CWND: f64 = 2.0;

/// Pacing headroom over `cwnd / RTT`: the pace timer runs a little fast
/// so the in-flight window limit, not the pacer, gates transmission.
pub const PACING_GAIN: f64 = 1.25;

/// The plateau time `K = ∛(W_max·(1 − β)/C)`, seconds: how long the
/// cubic function takes to climb back to `W_max`.
pub fn cubic_k(w_max: f64) -> f64 {
    (w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt()
}

/// The cubic window `W(t) = C·(t − K)³ + W_max`, packets, `t` seconds
/// since the epoch started.
pub fn w_cubic(t: f64, k: f64, w_max: f64) -> f64 {
    CUBIC_C * (t - k).powi(3) + w_max
}

/// The TCP-friendly window estimate (RFC 8312 §4.2), packets.
pub fn w_est(t: f64, rtt: f64, w_max: f64) -> f64 {
    w_max * CUBIC_BETA + 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA) * (t / rtt)
}

/// CUBIC controller state.
#[derive(Debug, Clone)]
pub struct Cubic {
    s: u32,
    /// Congestion window, packets.
    w: f64,
    /// Window at the last multiplicative decrease, packets.
    w_max: f64,
    /// Plateau time of the current epoch, seconds.
    k: f64,
    /// Slow-start threshold, packets (∞ until the first loss).
    ssthresh: f64,
    /// Start of the current cubic growth epoch.
    epoch_start: Option<SimTime>,
    /// Time of the last multiplicative decrease (one cut per RTT).
    last_cut: Option<SimTime>,
    /// Smoothed RTT.
    r: Option<Duration>,
    /// Cached allowed rate, bytes/second.
    x: f64,
    /// Whether the TCP-friendly region governed the last update.
    tcp_friendly: bool,
    nofeedback_deadline: SimTime,
    ops: u64,
}

impl Cubic {
    /// A CUBIC controller for segment size `s`. Until an RTT is known it
    /// paces one packet per second (the RFC 3448 §4.2 cold start, shared
    /// with TFRC so negotiation-time behaviour is uniform).
    pub fn new(s: u32) -> Self {
        Cubic {
            s,
            w: 1.0,
            w_max: 0.0,
            k: 0.0,
            ssthresh: f64::INFINITY,
            epoch_start: None,
            last_cut: None,
            r: None,
            x: s as f64,
            tcp_friendly: false,
            nofeedback_deadline: SimTime::from_secs(2),
            ops: 0,
        }
    }

    /// Current congestion window, packets.
    pub fn cwnd(&self) -> f64 {
        self.w
    }

    /// Window at the last multiplicative decrease, packets.
    pub fn w_max(&self) -> f64 {
        self.w_max
    }

    /// Plateau time of the current epoch, seconds.
    pub fn k(&self) -> f64 {
        self.k
    }

    fn refresh_rate(&mut self) {
        if let Some(r) = self.r {
            self.x = (PACING_GAIN * self.w * self.s as f64 / r.as_secs_f64())
                .max(update::min_rate(self.s));
        }
    }
}

impl CongestionControl for Cubic {
    fn seed_rtt(&mut self, now: SimTime, rtt: Duration) {
        debug_assert!(!rtt.is_zero());
        self.r = Some(rtt);
        self.w = update::initial_window(self.s) / self.s as f64;
        self.x = update::initial_rate(self.s, rtt);
        self.nofeedback_deadline = now + update::nofeedback_interval(self.s, self.x, self.r);
        self.ops += 3;
    }

    fn on_feedback(&mut self, fb: &FeedbackReport) {
        self.ops += 8;
        let sample = update::rtt_sample(fb.now, fb.ts_echo, fb.t_delay);
        let r = update::rtt_ewma(self.r, sample);
        self.r = Some(r);
        let rs = r.as_secs_f64();
        let s = self.s as f64;

        let cut_ok = match self.last_cut {
            Some(tc) => fb.now.saturating_since(tc) >= r,
            None => true,
        };
        if fb.newly_lost_pkts > 0 && cut_ok {
            // Multiplicative decrease; a fresh cubic epoch starts at the
            // next congestion-avoidance update.
            self.w_max = self.w;
            self.w = (self.w * CUBIC_BETA).max(MIN_CWND);
            self.ssthresh = self.w;
            self.k = cubic_k(self.w_max);
            self.epoch_start = None;
            self.last_cut = Some(fb.now);
            self.tcp_friendly = false;
        } else if fb.newly_lost_pkts == 0 {
            if self.w < self.ssthresh {
                // Slow start: grow by what was acked, at most doubling
                // per feedback round (reports arrive about once per RTT).
                let acked_pkts = fb.newly_acked_bytes as f64 / s;
                self.w = (self.w + acked_pkts).min(self.w * 2.0).min(self.ssthresh);
            } else {
                // Congestion avoidance: aim one RTT ahead (RFC 8312 §4.1)
                // and take the higher of the cubic and the TCP-friendly
                // window.
                let t0 = *self.epoch_start.get_or_insert(fb.now);
                let t = fb.now.saturating_since(t0).as_secs_f64() + rs;
                let wc = w_cubic(t, self.k, self.w_max);
                let we = w_est(t, rs, self.w_max);
                self.tcp_friendly = wc < we;
                self.w = wc.max(we).max(MIN_CWND);
            }
        }
        // Losses inside the same RTT as the last cut change nothing: they
        // belong to the congestion event already acted on.

        self.refresh_rate();
        self.nofeedback_deadline = fb.now + update::nofeedback_interval(self.s, self.x, self.r);
    }

    fn on_nofeedback_timer(&mut self, now: SimTime) {
        // Feedback stopped: halve the window like the TFRC backoff, and
        // restart cubic growth from here once feedback resumes.
        self.w = (self.w / 2.0).max(MIN_CWND);
        self.ssthresh = self.ssthresh.min(self.w.max(MIN_CWND));
        self.epoch_start = None;
        self.w_max = self.w_max.max(self.w);
        self.k = cubic_k(self.w_max);
        if self.r.is_some() {
            self.refresh_rate();
        } else {
            self.x = (self.x / 2.0).max(update::min_rate(self.s));
        }
        self.ops += 4;
        self.nofeedback_deadline = now + update::nofeedback_interval(self.s, self.x, self.r);
    }

    fn nofeedback_deadline(&self) -> SimTime {
        self.nofeedback_deadline
    }

    fn allowed_rate(&self) -> f64 {
        self.x
    }

    fn send_interval(&self) -> Duration {
        Duration::from_secs_f64(self.s as f64 / self.x)
    }

    fn cwnd_limit(&self) -> Option<u64> {
        Some((self.w * self.s as f64) as u64)
    }

    fn rtt(&self) -> Option<Duration> {
        self.r
    }

    fn ops(&self) -> u64 {
        self.ops
    }

    fn state(&self) -> CcState {
        CcState::Cubic {
            cwnd_bytes: (self.w * self.s as f64) as u64,
            w_max_bytes: (self.w_max * self.s as f64) as u64,
            tcp_friendly: self.tcp_friendly,
        }
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u32 = 1000;
    const RTT: Duration = Duration::from_millis(100);

    fn fb(now: SimTime, acked: u64, lost: u32) -> FeedbackReport {
        FeedbackReport {
            now,
            ts_echo: now - RTT,
            t_delay: Duration::ZERO,
            x_recv: 1e9,
            p: if lost > 0 { 0.01 } else { 0.0 },
            newly_acked_bytes: acked,
            newly_lost_pkts: lost,
        }
    }

    /// Hand-computed values of the cubic function around the inflection
    /// point. With W_max = 100 pkts: K = ∛(100·0.3/0.4) = ∛75 ≈ 4.2172 s;
    /// W(0) = W_max − C·K³ = β·W_max = 70; W(K) = W_max exactly; and one
    /// second past K the window is W_max + 0.4 ≈ 100.4.
    #[test]
    fn cubic_window_matches_hand_computed_values_at_the_inflection() {
        let w_max = 100.0;
        let k = cubic_k(w_max);
        assert!((k - 75.0f64.cbrt()).abs() < 1e-12);
        assert!((k - 4.217163).abs() < 1e-6, "K = {k}");
        // t = 0: the cubic starts at the post-decrease window β·W_max.
        assert!((w_cubic(0.0, k, w_max) - 70.0).abs() < 1e-9);
        // t = K: the inflection point, exactly W_max (plateau).
        assert!((w_cubic(k, k, w_max) - w_max).abs() < 1e-12);
        // Symmetry around K: W(K−d) + W(K+d) = 2·W_max.
        for d in [0.5, 1.0, 2.0] {
            let sum = w_cubic(k - d, k, w_max) + w_cubic(k + d, k, w_max);
            assert!((sum - 2.0 * w_max).abs() < 1e-9, "d={d}");
        }
        // One second past K: W_max + C·1³.
        assert!((w_cubic(k + 1.0, k, w_max) - 100.4).abs() < 1e-9);
    }

    #[test]
    fn loss_cuts_by_beta_and_sets_the_epoch() {
        let mut c = Cubic::new(S);
        c.seed_rtt(SimTime::ZERO, RTT);
        // Grow to 100 packets via slow start.
        let mut now = SimTime::ZERO;
        while c.cwnd() < 100.0 {
            now += RTT;
            c.on_feedback(&fb(now, (c.cwnd() * S as f64) as u64, 0));
        }
        let before = c.cwnd();
        now += RTT;
        c.on_feedback(&fb(now, 0, 3));
        assert!((c.cwnd() - before * CUBIC_BETA).abs() < 1e-9);
        assert!((c.w_max() - before).abs() < 1e-9);
        assert!((c.k() - cubic_k(before)).abs() < 1e-12);
    }

    #[test]
    fn only_one_cut_per_rtt() {
        let mut c = Cubic::new(S);
        c.seed_rtt(SimTime::ZERO, RTT);
        let mut now = SimTime::from_millis(100);
        c.on_feedback(&fb(now, 4000, 1));
        let after_first = c.cwnd();
        // A second loss report 10 ms later is the same congestion event.
        now += Duration::from_millis(10);
        c.on_feedback(&fb(now, 0, 2));
        assert_eq!(c.cwnd(), after_first);
    }

    #[test]
    fn avoidance_recovers_towards_w_max_along_the_cubic() {
        let mut c = Cubic::new(S);
        c.seed_rtt(SimTime::ZERO, RTT);
        let mut now = SimTime::from_millis(100);
        while c.cwnd() < 100.0 {
            c.on_feedback(&fb(now, (c.cwnd() * S as f64) as u64, 0));
            now += RTT;
        }
        let w_max = c.cwnd();
        c.on_feedback(&fb(now, 0, 1));
        // Walk feedback rounds past the plateau time: the window must
        // climb back to (and then beyond) W_max.
        for _ in 0..((cubic_k(w_max) / RTT.as_secs_f64()) as usize + 8) {
            now += RTT;
            c.on_feedback(&fb(now, (c.cwnd() * S as f64) as u64, 0));
        }
        assert!(c.cwnd() > w_max, "w={} w_max={w_max}", c.cwnd());
    }

    #[test]
    fn rate_paces_above_cwnd_over_rtt_and_window_limits_inflight() {
        let mut c = Cubic::new(S);
        c.seed_rtt(SimTime::ZERO, RTT);
        // W_init = 4000 B over 100 ms = 40 kB/s, like the TFRC seed.
        assert!((c.allowed_rate() - 40_000.0).abs() < 1e-9);
        // The in-flight limit is exactly the window in bytes…
        assert_eq!(c.cwnd_limit(), Some((c.cwnd() * S as f64) as u64));
        // …and after a feedback round the pace runs PACING_GAIN above
        // cwnd/RTT so the window is the binding constraint.
        c.on_feedback(&fb(SimTime::from_millis(100), 4000, 0));
        let expect = PACING_GAIN * c.cwnd() * S as f64 / RTT.as_secs_f64();
        assert!((c.allowed_rate() - expect).abs() < 1e-9);
    }

    #[test]
    fn nofeedback_halves_the_window() {
        let mut c = Cubic::new(S);
        c.seed_rtt(SimTime::ZERO, RTT);
        let w = c.cwnd();
        let deadline = c.nofeedback_deadline();
        c.on_nofeedback_timer(deadline);
        assert!((c.cwnd() - w / 2.0).abs() < 1e-9);
        assert!(c.nofeedback_deadline() > deadline);
    }
}
